package refmodel

import "bpred/internal/trace"

// Reference implementations of the modern schemes (DESIGN.md §15),
// kept in this package's deliberately different style: sparse maps
// instead of dense arrays, modular arithmetic instead of masks, plain
// ints instead of clamped machine words. Each step follows the same
// documented order as the production predictor — predict, meter,
// train, allocate, age, shift — because that order is part of the
// specification, but every index, tag, and counter is computed
// through independent code.

// tageEntry is one live tagged-table entry. Presence in the table map
// is the entry's valid bit.
type tageEntry struct {
	tag    uint64
	ctr    int // 0..7, predicts taken at >= 4
	useful int // 0..3
}

// tageState is the TAGE reference state.
type tageState struct {
	base   map[uint64]int         // base-table counter, absent = 2
	tab    []map[uint64]tageEntry // per tagged table: index -> entry
	ghr    uint64                 // global outcome history, newest in bit 0
	tick   uint64                 // update counter driving aging
	useAlt int                    // 0..15; >= 8 prefers altpred for weak providers
}

func newTAGEState(cfg Config) *tageState {
	s := &tageState{base: make(map[uint64]int), useAlt: 8}
	for i := 0; i < cfg.TAGETables; i++ {
		s.tab = append(s.tab, make(map[uint64]tageEntry))
	}
	return s
}

// tageHistLen returns table i's history length: the geometric series
// min(MaxHist, MinHist*2^i), capped at the 64-bit register.
func (m *Model) tageHistLen(i int) int {
	l := m.cfg.TAGEMinHist
	for j := 0; j < i; j++ {
		l *= 2
		if l >= m.cfg.TAGEMaxHist {
			return m.cfg.TAGEMaxHist
		}
	}
	if l > m.cfg.TAGEMaxHist {
		l = m.cfg.TAGEMaxHist
	}
	return l
}

// histPrefix returns the low bits-long prefix of h.
func histPrefix(h uint64, bits int) uint64 {
	if bits >= 64 {
		return h
	}
	return h % (uint64(1) << bits)
}

// onesPattern is the all-taken pattern at the given width.
func onesPattern(bits int) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<bits - 1
}

// foldMod XOR-folds h into the range [0, modulus) by repeated
// division — the reference counterpart of the engine's shift/mask
// fold.
func foldMod(h, modulus uint64) uint64 {
	if modulus <= 1 {
		return 0
	}
	var f uint64
	for h > 0 {
		f ^= h % modulus
		h /= modulus
	}
	return f
}

// stepTAGE is the TAGE reference step.
func (m *Model) stepTAGE(b trace.Branch) StepInfo {
	m.tot.Steps++
	s := m.tage
	w := word(b.PC)
	nt := m.cfg.TAGETables
	rowsN := uint64(1) << m.cfg.HistBits
	colsN := uint64(1) << m.cfg.ColBits
	tagN := uint64(1) << m.cfg.TAGETagBits

	colIdx := w % colsN
	baseCtr, haveBase := s.base[colIdx]
	if !haveBase {
		baseCtr = 2
	}
	basePred := baseCtr >= 2

	// Tagged lookups: every table probes (the meter needs the full
	// match set); the provider is the longest-history match, the
	// alternate the next one down.
	idxs := make([]uint64, nt)
	tags := make([]uint64, nt)
	match := make([]bool, nt)
	provider, alt := -1, -1
	for i := 0; i < nt; i++ {
		h := histPrefix(s.ghr, m.tageHistLen(i))
		idxs[i] = (w ^ w/rowsN ^ foldMod(h, rowsN) ^ uint64(i)) % rowsN
		// The tag folds the history a second time at half the modulus
		// (doubled back in) so it is never a function of the index.
		tags[i] = (w ^ w/tagN ^ foldMod(h, tagN) ^ foldMod(h, tagN/2)*2) % tagN
		e, live := s.tab[i][idxs[i]]
		if live && e.tag == tags[i] {
			match[i] = true
			alt = provider
			provider = i
		}
	}
	altPred := basePred
	if alt >= 0 {
		altPred = s.tab[alt][idxs[alt]].ctr >= 4
	}
	providerPred := false
	pWeak := false
	pred := basePred
	ctrBefore := baseCtr
	if provider >= 0 {
		e := s.tab[provider][idxs[provider]]
		ctrBefore = e.ctr
		providerPred = ctrBefore >= 4
		// A weak, not-yet-useful provider is likely freshly allocated;
		// the useAlt confidence counter decides whether the alternate
		// prediction beats it (Seznec's USE_ALT_ON_NA).
		pWeak = (e.ctr == 3 || e.ctr == 4) && e.useful == 0
		if pWeak && s.useAlt >= 8 {
			pred = altPred
		} else {
			pred = providerPred
		}
	}

	s.tick++

	// Meter the deciding entry under the paper's taxonomy, then the
	// tagged-table extensions.
	var mc cell
	allOnes := false
	if provider >= 0 {
		mc = cell{uint64(provider), idxs[provider]}
		l := m.tageHistLen(provider)
		allOnes = histPrefix(s.ghr, l) == onesPattern(l)
	} else {
		mc = cell{uint64(nt), colIdx}
	}
	m.tot.Accesses++
	if prev, seen := m.last[mc]; seen && prev.pc != b.PC {
		m.tot.Conflicts++
		if allOnes {
			m.tot.AllOnes++
		}
		if prev.taken == b.Taken {
			m.tot.Agreeing++
		} else {
			m.tot.Destructive++
		}
	}
	m.last[mc] = access{pc: b.PC, taken: b.Taken}
	for i := 0; i < nt; i++ {
		if match[i] {
			if (s.tab[i][idxs[i]].ctr >= 4) == b.Taken {
				m.tot.TagAgree++
			} else {
				m.tot.TagDisagree++
			}
		}
	}
	if provider >= 0 && providerPred != altPred {
		m.tot.Overrides++
		if providerPred == b.Taken {
			m.tot.OverrideCorrect++
		}
	}

	// Steer useAlt: on a weak-provider override, learn which side of
	// the provider/alternate disagreement to trust next time.
	if provider >= 0 && pWeak && providerPred != altPred {
		if providerPred == b.Taken {
			if s.useAlt > 0 {
				s.useAlt--
			}
		} else if s.useAlt < 15 {
			s.useAlt++
		}
	}

	// Train: useful steering on override, then the deciding counter.
	if provider >= 0 {
		e := s.tab[provider][idxs[provider]]
		if providerPred != altPred {
			if providerPred == b.Taken {
				if e.useful < 3 {
					e.useful++
				}
			} else if e.useful > 0 {
				e.useful--
			}
		}
		if b.Taken {
			if e.ctr < 7 {
				e.ctr++
			}
		} else if e.ctr > 0 {
			e.ctr--
		}
		s.tab[provider][idxs[provider]] = e
	} else {
		if b.Taken {
			if baseCtr < 3 {
				baseCtr++
			}
		} else if baseCtr > 0 {
			baseCtr--
		}
		s.base[colIdx] = baseCtr
	}

	// Allocate on a mispredict: the first longer-history table whose
	// slot has useful == 0 takes a fresh entry (a live victim is a
	// tag-conflict eviction); when none qualifies, decay every
	// longer-history candidate's useful counter instead.
	if pred != b.Taken {
		allocated := false
		for j := provider + 1; j < nt; j++ {
			e, live := s.tab[j][idxs[j]]
			if !live || e.useful == 0 {
				if live {
					m.tot.UsefulVictims++
				}
				ctr := 3
				if b.Taken {
					ctr = 4
				}
				s.tab[j][idxs[j]] = tageEntry{tag: tags[j], ctr: ctr, useful: 0}
				allocated = true
				break
			}
		}
		if !allocated {
			for j := provider + 1; j < nt; j++ {
				if e, live := s.tab[j][idxs[j]]; live && e.useful > 0 {
					e.useful--
					s.tab[j][idxs[j]] = e
				}
			}
		}
	}

	// Age: halve every useful counter each aging period.
	if m.cfg.TAGEUPeriod > 0 && s.tick%uint64(m.cfg.TAGEUPeriod) == 0 {
		for i := range s.tab {
			for k, e := range s.tab[i] {
				e.useful /= 2
				s.tab[i][k] = e
			}
		}
	}

	outcome := uint64(0)
	if b.Taken {
		outcome = 1
	}
	s.ghr = s.ghr*2 + outcome

	if pred != b.Taken {
		m.tot.Mispredicts++
	}
	return StepInfo{
		Predicted:     pred,
		Row:           mc.row,
		Col:           mc.col,
		Pattern:       histPrefix(s.ghr/2, m.cfg.TAGEMaxHist),
		AllOnes:       allOnes,
		CounterBefore: ctrBefore,
	}
}

// percState is the perceptron reference state.
type percState struct {
	w   map[uint64][]int // weight vector per perceptron, bias first
	ghr uint64           // outcome history, newest in bit 0
}

func newPercState() *percState { return &percState{w: make(map[uint64][]int)} }

// stepPerceptron is the perceptron reference step.
func (m *Model) stepPerceptron(b trace.Branch) StepInfo {
	m.tot.Steps++
	s := m.perc
	hl := m.cfg.HistBits
	colsN := uint64(1) << m.cfg.ColBits
	histN := uint64(1) << hl
	wmax := 1<<(m.cfg.WeightBits-1) - 1
	wmin := -(1 << (m.cfg.WeightBits - 1))

	idx := word(b.PC) % colsN
	vec, ok := s.w[idx]
	if !ok {
		vec = make([]int, hl+1)
		s.w[idx] = vec
	}
	y := vec[0]
	h := s.ghr
	for k := 0; k < hl; k++ {
		if h%2 == 1 {
			y += vec[1+k]
		} else {
			y -= vec[1+k]
		}
		h /= 2
	}
	pred := y >= 0

	// Meter at the weight-vector granularity.
	m.tot.Accesses++
	mc := cell{0, idx}
	allOnes := s.ghr == histN-1
	if prev, seen := m.last[mc]; seen && prev.pc != b.PC {
		m.tot.Conflicts++
		if allOnes {
			m.tot.AllOnes++
		}
		if prev.taken == b.Taken {
			m.tot.Agreeing++
		} else {
			m.tot.Destructive++
		}
	}
	m.last[mc] = access{pc: b.PC, taken: b.Taken}

	// Train on mispredicts and low-confidence outputs.
	mag := y
	if mag < 0 {
		mag = -mag
	}
	if pred != b.Taken || mag <= m.cfg.Threshold {
		if b.Taken {
			if vec[0] < wmax {
				vec[0]++
			}
		} else if vec[0] > wmin {
			vec[0]--
		}
		h = s.ghr
		for k := 0; k < hl; k++ {
			if (h%2 == 1) == b.Taken {
				if vec[1+k] < wmax {
					vec[1+k]++
				}
			} else if vec[1+k] > wmin {
				vec[1+k]--
			}
			h /= 2
		}
	}

	outcome := uint64(0)
	if b.Taken {
		outcome = 1
	}
	s.ghr = (s.ghr*2 + outcome) % histN

	if pred != b.Taken {
		m.tot.Mispredicts++
	}
	return StepInfo{
		Predicted:     pred,
		Row:           0,
		Col:           idx,
		Pattern:       s.ghr,
		AllOnes:       allOnes,
		CounterBefore: y,
	}
}

// tournState is the tournament reference state. Counters absent from
// a map hold the weakly-taken reset value 2.
type tournState struct {
	gshare map[uint64]int
	bim    map[uint64]int
	choose map[uint64]int
	ghr    uint64
}

func newTournState() *tournState {
	return &tournState{
		gshare: make(map[uint64]int),
		bim:    make(map[uint64]int),
		choose: make(map[uint64]int),
	}
}

// ctrAt reads a two-bit counter map with the weakly-taken default.
func ctrAt(t map[uint64]int, i uint64) int {
	if c, ok := t[i]; ok {
		return c
	}
	return 2
}

// train2 steps a two-bit counter map entry toward the outcome.
func train2(t map[uint64]int, i uint64, up bool) {
	c := ctrAt(t, i)
	if up {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	t[i] = c
}

// stepTournament is the McFarling tournament reference step.
func (m *Model) stepTournament(b trace.Branch) StepInfo {
	m.tot.Steps++
	s := m.tourn
	w := word(b.PC)
	gN := uint64(1) << m.cfg.HistBits
	bN := uint64(1) << m.cfg.ColBits
	cN := uint64(1) << m.cfg.ChooserBits

	gi := (s.ghr ^ w) % gN
	bi := w % bN
	ci := w % cN
	gp := ctrAt(s.gshare, gi) >= 2
	bp := ctrAt(s.bim, bi) >= 2
	pred := bp
	if ctrAt(s.choose, ci) >= 2 {
		pred = gp
	}

	// Meter the gshare component, where history aliasing lives.
	m.tot.Accesses++
	mc := cell{0, gi}
	allOnes := s.ghr == gN-1
	if prev, seen := m.last[mc]; seen && prev.pc != b.PC {
		m.tot.Conflicts++
		if allOnes {
			m.tot.AllOnes++
		}
		if prev.taken == b.Taken {
			m.tot.Agreeing++
		} else {
			m.tot.Destructive++
		}
	}
	m.last[mc] = access{pc: b.PC, taken: b.Taken}

	train2(s.gshare, gi, b.Taken)
	train2(s.bim, bi, b.Taken)
	if gp != bp {
		train2(s.choose, ci, gp == b.Taken)
	}

	outcome := uint64(0)
	if b.Taken {
		outcome = 1
	}
	s.ghr = (s.ghr*2 + outcome) % gN

	if pred != b.Taken {
		m.tot.Mispredicts++
	}
	return StepInfo{
		Predicted:     pred,
		Row:           0,
		Col:           gi,
		Pattern:       s.ghr,
		AllOnes:       allOnes,
		CounterBefore: ctrAt(s.gshare, gi),
	}
}
