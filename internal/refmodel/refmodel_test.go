package refmodel

import (
	"testing"

	"bpred/internal/trace"
)

func mustNew(t *testing.T, cfg Config) *Model {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return m
}

func br(pc uint64, taken bool) trace.Branch {
	return trace.Branch{PC: pc, Target: pc + 64, Taken: taken}
}

// TestBimodalCounter hand-checks the two-bit saturating counter: it
// starts weakly taken, moves one step per outcome, and saturates at
// the rails.
func TestBimodalCounter(t *testing.T) {
	m := mustNew(t, Config{Scheme: Bimodal, ColBits: 4})
	b := br(0x100, false)
	// Weakly taken start: predicts taken, is wrong.
	if st := m.Step(b); !st.Predicted {
		t.Fatal("fresh counter must predict taken")
	}
	// One not-taken training moved it to 0b01: still one more wrong
	// not-taken prediction boundary — state 1 predicts not taken.
	if st := m.Step(b); st.Predicted {
		t.Fatal("after one not-taken, counter at 1 must predict not taken")
	}
	// Saturate downward, then two takens must flip it back to taken.
	m.Step(b)
	m.Step(b)
	bT := br(0x100, true)
	m.Step(bT)
	if st := m.Step(bT); st.Predicted {
		t.Fatal("one taken from floor reaches 1: still not taken")
	}
	m.Step(bT)
	if st := m.Step(bT); !st.Predicted {
		t.Fatal("three takens from floor cross the midpoint")
	}
	if got := m.Totals().Steps; got != 8 {
		t.Fatalf("Steps = %d, want 8", got)
	}
}

// TestColumnSelectionAndConflicts checks §3's aliasing definition:
// two branches whose word addresses agree modulo the column count
// share a counter and conflict; agreement/destructiveness follows
// their outcomes at the collision.
func TestColumnSelectionAndConflicts(t *testing.T) {
	m := mustNew(t, Config{Scheme: Bimodal, ColBits: 2}) // 4 columns
	a := br(0x100, true)                                 // word 0x40, column 0
	b := br(0x110, true)                                 // word 0x44, column 0 — aliases with a
	c := br(0x104, false)                                // word 0x41, column 1 — does not

	m.Step(a)
	m.Step(c)
	if got := m.Totals().Conflicts; got != 0 {
		t.Fatalf("distinct columns conflicted: %d", got)
	}
	m.Step(b) // same column, different PC, same outcome: agreeing
	tot := m.Totals()
	if tot.Conflicts != 1 || tot.Agreeing != 1 || tot.Destructive != 0 {
		t.Fatalf("agreeing conflict miscounted: %+v", tot)
	}
	m.Step(br(0x100, false)) // back to a with flipped outcome: destructive
	tot = m.Totals()
	if tot.Conflicts != 2 || tot.Destructive != 1 {
		t.Fatalf("destructive conflict miscounted: %+v", tot)
	}
	// Re-access by the same branch is not a conflict.
	m.Step(br(0x100, false))
	if got := m.Totals().Conflicts; got != 2 {
		t.Fatalf("same-branch access counted as conflict: %d", got)
	}
}

// TestGlobalHistoryRow hand-computes GAg row selection: the history
// register holds the last HistBits outcomes, most recent in the low
// bit.
func TestGlobalHistoryRow(t *testing.T) {
	m := mustNew(t, Config{Scheme: Global, HistBits: 3})
	outcomes := []bool{true, false, true, true}
	wantRows := []uint64{0, 1, 0b10, 0b101} // row seen *before* each update
	for i, taken := range outcomes {
		st := m.Step(br(0x200, taken))
		if st.Row != wantRows[i] {
			t.Fatalf("step %d: row %b, want %b", i, st.Row, wantRows[i])
		}
	}
	// After T,N,T,T the register holds 011 (oldest fell off).
	if st := m.Step(br(0x200, true)); st.Row != 0b011 {
		t.Fatalf("register after TNTT = %b, want 011", st.Row)
	}
}

// TestAllOnesClassification checks the tight-loop classification: a
// conflict is all-ones only when the outcome history is the all-taken
// pattern of the configured width.
func TestAllOnesClassification(t *testing.T) {
	m := mustNew(t, Config{Scheme: Global, HistBits: 2, ColBits: 0})
	// Drive history to 11 with one branch; its third access touches
	// row 3, so the colliding branch's row-3 access is a conflict.
	m.Step(br(0x100, true))
	m.Step(br(0x100, true))
	m.Step(br(0x100, true))
	st := m.Step(br(0x200, true)) // history is 11: all-ones access
	if !st.AllOnes {
		t.Fatal("history 11 not classified all-ones")
	}
	tot := m.Totals()
	if tot.AllOnes != 1 {
		t.Fatalf("all-ones conflicts = %d, want 1", tot.AllOnes)
	}
	// Path history is never an all-ones outcome pattern.
	p := mustNew(t, Config{Scheme: Path, HistBits: 2, PathBits: 1})
	p.Step(br(0x100, true))
	if st := p.Step(br(0x100, true)); st.AllOnes {
		t.Fatal("path pattern classified all-ones")
	}
}

// TestGShareRow checks the XOR: the row is history XOR the address
// bits above column selection, reduced to the row count.
func TestGShareRow(t *testing.T) {
	m := mustNew(t, Config{Scheme: GShare, HistBits: 4, ColBits: 2})
	// Build history 0b1011.
	for _, taken := range []bool{true, false, true, true} {
		m.Step(br(0, taken))
	}
	// pc 0x1D8: word 0x76 = 0b1110110; column = 0b10, upper bits
	// 0b11101; row = (0b1011 ^ 0b11101) mod 16 = 0b10110 mod 16 = 0b0110.
	st := m.Step(br(0x1D8, true))
	if st.Col != 0b10 {
		t.Fatalf("column %b, want 10", st.Col)
	}
	if st.Row != 0b0110 {
		t.Fatalf("row %b, want 0110", st.Row)
	}
}

// TestPathRegister hand-computes Nair's path history: each event
// shifts in PathBits low bits of the next-instruction word address.
func TestPathRegister(t *testing.T) {
	m := mustNew(t, Config{Scheme: Path, HistBits: 4, PathBits: 2})
	// Taken branch to 0x20C: next word 0x83, low 2 bits 11.
	m.Step(trace.Branch{PC: 0x100, Target: 0x20C, Taken: true})
	// Not-taken branch at 0x104: fall-through 0x108, word 0x42, low bits 10.
	st := m.Step(trace.Branch{PC: 0x104, Target: 0x300, Taken: false})
	if st.Pattern != 0b11 {
		t.Fatalf("pattern before second event = %b, want 11", st.Pattern)
	}
	st = m.Step(trace.Branch{PC: 0x108, Target: 0x400, Taken: true})
	if st.Pattern != 0b1110 {
		t.Fatalf("pattern after two events = %b, want 1110", st.Pattern)
	}
}

// TestPerfectFirstLevel checks the idealized table: per-branch
// histories never interfere and misses never occur.
func TestPerfectFirstLevel(t *testing.T) {
	m := mustNew(t, Config{Scheme: PerAddress, HistBits: 3, FirstLevel: Perfect})
	m.Step(br(0x100, true))
	m.Step(br(0x200, false))
	m.Step(br(0x100, true))
	st := m.Step(br(0x100, false))
	if st.Pattern != 0b11 {
		t.Fatalf("branch A history = %b, want 11", st.Pattern)
	}
	st = m.Step(br(0x200, false))
	if st.Pattern != 0b00 {
		t.Fatalf("branch B history = %b, want 00", st.Pattern)
	}
	tot := m.Totals()
	if tot.FirstLevelMisses != 0 || tot.FirstLevelLookups != 5 {
		t.Fatalf("perfect table misses/lookups = %d/%d", tot.FirstLevelMisses, tot.FirstLevelLookups)
	}
}

// TestPrefixOf0xC3FF pins the paper's reset pattern: the width-w
// prefix of 1100001111111111, repeating beyond 16 bits.
func TestPrefixOf0xC3FF(t *testing.T) {
	want := map[int]uint64{
		0:  0,
		1:  0b1,
		2:  0b11,
		3:  0b110,
		4:  0b1100,
		6:  0b110000,
		8:  0b11000011,
		10: 0b1100001111,
		16: 0xC3FF,
		20: 0xC3FFC,
		32: 0xC3FFC3FF,
	}
	for w, v := range want {
		if got := PrefixOf0xC3FF(w); got != v {
			t.Errorf("PrefixOf0xC3FF(%d) = %#x, want %#x", w, got, v)
		}
	}
}

// TestTaggedConflictReset checks §5 semantics on a 1-entry table:
// alternating branches evict each other, and each reallocation
// resets the register to the 0xC3FF prefix.
func TestTaggedConflictReset(t *testing.T) {
	m := mustNew(t, Config{
		Scheme: PerAddress, HistBits: 4,
		FirstLevel: Tagged, Entries: 1, Ways: 1, Reset: ResetPrefix,
	})
	a, b := br(0x100, true), br(0x200, true)
	m.Step(a) // cold miss, reset to 1100, then shifts in 1
	st := m.Step(b)
	if st.Pattern != 0b1100 {
		t.Fatalf("conflict pattern = %b, want the 4-bit 0xC3FF prefix 1100", st.Pattern)
	}
	st = m.Step(a) // evicted by b: conflict again
	if st.Pattern != 0b1100 {
		t.Fatalf("re-conflict pattern = %b, want 1100", st.Pattern)
	}
	tot := m.Totals()
	if tot.FirstLevelMisses != 3 || tot.FirstLevelLookups != 3 {
		t.Fatalf("misses/lookups = %d/%d, want 3/3", tot.FirstLevelMisses, tot.FirstLevelLookups)
	}
}

// TestTaggedLRU checks least-recently-used victim selection in a
// 2-way set: touching an entry protects it from the next eviction.
func TestTaggedLRU(t *testing.T) {
	m := mustNew(t, Config{
		Scheme: PerAddress, HistBits: 2,
		FirstLevel: Tagged, Entries: 2, Ways: 2, Reset: ResetZeros,
	})
	a, b, c := br(0x100, true), br(0x200, true), br(0x300, true)
	m.Step(a)
	m.Step(b)
	m.Step(a) // refresh a: b is now LRU
	m.Step(c) // evicts b
	before := m.Totals().FirstLevelMisses
	m.Step(a) // must still hit
	if got := m.Totals().FirstLevelMisses; got != before {
		t.Fatalf("a was evicted despite being recently used (misses %d -> %d)", before, got)
	}
	m.Step(b) // was evicted: miss
	if got := m.Totals().FirstLevelMisses; got != before+1 {
		t.Fatalf("b unexpectedly resident (misses %d -> %d)", before, got)
	}
}

// TestUntaggedSharing checks the tagless table: branches indexing the
// same entry silently continue each other's history, and misses are
// never detected.
func TestUntaggedSharing(t *testing.T) {
	m := mustNew(t, Config{
		Scheme: PerAddress, HistBits: 3,
		FirstLevel: Untagged, Entries: 2,
	})
	a := br(0x100, true)  // word 0x40: entry 0
	b := br(0x108, false) // word 0x42: entry 0 — shares with a
	m.Step(a)
	st := m.Step(b)
	if st.Pattern != 0b1 {
		t.Fatalf("b did not inherit a's history: %b", st.Pattern)
	}
	st = m.Step(a)
	if st.Pattern != 0b10 {
		t.Fatalf("a did not see b's pollution: %b", st.Pattern)
	}
	if got := m.Totals().FirstLevelMisses; got != 0 {
		t.Fatalf("untagged table reported %d misses", got)
	}
}

// TestZeroWidthHistory checks the degenerate 0-bit register: one row,
// pattern always 0, classified all-ones vacuously for outcome-history
// schemes (a 0-bit history trivially contains no not-taken outcomes).
func TestZeroWidthHistory(t *testing.T) {
	for _, cfg := range []Config{
		{Scheme: Global, HistBits: 0, ColBits: 2},
		{Scheme: PerAddress, HistBits: 0, ColBits: 2, FirstLevel: Perfect},
	} {
		m := mustNew(t, cfg)
		m.Step(br(0x100, true))
		st := m.Step(br(0x200, true))
		if st.Row != 0 {
			t.Errorf("%v: zero-width row = %d", cfg.Scheme, st.Row)
		}
		if !st.AllOnes {
			t.Errorf("%v: zero-width history not vacuously all-ones", cfg.Scheme)
		}
	}
	// Bimodal has no outcome history at all: never all-ones.
	m := mustNew(t, Config{Scheme: Bimodal, ColBits: 2})
	m.Step(br(0x100, true))
	if st := m.Step(br(0x200, true)); st.AllOnes {
		t.Error("bimodal access classified all-ones")
	}
}

// TestInvalidConfigs checks New rejects malformed configurations.
func TestInvalidConfigs(t *testing.T) {
	bad := []Config{
		{Scheme: Global, HistBits: -1},
		{Scheme: Global, HistBits: 33},
		{Scheme: Global, HistBits: 20, ColBits: 20},
		{Scheme: Path, HistBits: 4, PathBits: 0},
		{Scheme: Path, HistBits: 4, PathBits: 40},
		{Scheme: Global, CounterBits: 9},
		{Scheme: PerAddress, FirstLevel: Tagged, Entries: 0, Ways: 1},
		{Scheme: PerAddress, FirstLevel: Tagged, Entries: 12, Ways: 4},
		{Scheme: PerAddress, FirstLevel: Untagged, Entries: 3},
		{Scheme: Scheme(99)},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted invalid config", cfg)
		}
	}
}

// TestDumpState smoke-checks the divergence-report dump renders and
// caps output.
func TestDumpState(t *testing.T) {
	m := mustNew(t, Config{Scheme: GShare, HistBits: 4, ColBits: 2})
	for i := 0; i < 64; i++ {
		m.Step(br(uint64(0x100+8*i), i%3 == 0))
	}
	s := m.DumpState(4)
	if s == "" {
		t.Fatal("empty dump")
	}
	if m.Totals().Steps != 64 {
		t.Fatalf("steps = %d", m.Totals().Steps)
	}
}
