package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
)

// Digest returns a SHA-256 content digest of the trace: its name,
// metadata, and every branch record. Two traces with the same digest
// drive a deterministic simulator to identical results, which is what
// lets the checkpoint layer (internal/checkpoint) key cached sweep
// cells by trace content instead of by file path or generation
// parameters.
//
// The digest covers the in-memory representation, not the BPT1 byte
// stream, so it is insensitive to on-disk encoding details and equally
// applicable to generated traces that never touch a file.
func (t *Trace) Digest() [sha256.Size]byte {
	h := sha256.New()
	var hdr [8]byte
	h.Write([]byte("bpred-trace-digest-v1\x00"))
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(t.Name)))
	h.Write(hdr[:])
	h.Write([]byte(t.Name))
	binary.LittleEndian.PutUint64(hdr[:], t.Instructions)
	h.Write(hdr[:])
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(t.Branches)))
	h.Write(hdr[:])

	// Records are hashed in fixed-width little-endian blocks; buffering
	// amortizes the hasher's call overhead over ~3800 records at a time.
	const recSize = 8 + 8 + 1
	buf := make([]byte, 0, recSize*3855)
	for i := range t.Branches {
		b := &t.Branches[i]
		var rec [recSize]byte
		binary.LittleEndian.PutUint64(rec[0:], b.PC)
		binary.LittleEndian.PutUint64(rec[8:], b.Target)
		if b.Taken {
			rec[16] = 1
		}
		buf = append(buf, rec[:]...)
		if len(buf)+recSize > cap(buf) {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	h.Write(buf)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// DigestWriter computes the same content digest as Trace.Digest
// incrementally, so a streaming consumer (the service's upload path)
// can fingerprint a trace without ever materializing it. The record
// count is part of the hashed preamble and must be known up front —
// trace headers carry it — and the caller is responsible for feeding
// exactly that many records.
type DigestWriter struct {
	h   hash.Hash
	buf []byte
}

// NewDigestWriter starts a digest over the given trace metadata.
func NewDigestWriter(name string, instructions, count uint64) *DigestWriter {
	h := sha256.New()
	var hdr [8]byte
	h.Write([]byte("bpred-trace-digest-v1\x00"))
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(name)))
	h.Write(hdr[:])
	h.Write([]byte(name))
	binary.LittleEndian.PutUint64(hdr[:], instructions)
	h.Write(hdr[:])
	binary.LittleEndian.PutUint64(hdr[:], count)
	h.Write(hdr[:])
	const recSize = 8 + 8 + 1
	return &DigestWriter{h: h, buf: make([]byte, 0, recSize*3855)}
}

// WriteBranch folds one record into the digest.
func (d *DigestWriter) WriteBranch(b Branch) {
	const recSize = 8 + 8 + 1
	var rec [recSize]byte
	binary.LittleEndian.PutUint64(rec[0:], b.PC)
	binary.LittleEndian.PutUint64(rec[8:], b.Target)
	if b.Taken {
		rec[16] = 1
	}
	d.buf = append(d.buf, rec[:]...)
	if len(d.buf)+recSize > cap(d.buf) {
		d.h.Write(d.buf)
		d.buf = d.buf[:0]
	}
}

// Sum returns the digest over everything written so far.
func (d *DigestWriter) Sum() [sha256.Size]byte {
	d.h.Write(d.buf)
	d.buf = d.buf[:0]
	var out [sha256.Size]byte
	d.h.Sum(out[:0])
	return out
}
