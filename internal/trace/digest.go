package trace

import (
	"crypto/sha256"
	"encoding/binary"
)

// Digest returns a SHA-256 content digest of the trace: its name,
// metadata, and every branch record. Two traces with the same digest
// drive a deterministic simulator to identical results, which is what
// lets the checkpoint layer (internal/checkpoint) key cached sweep
// cells by trace content instead of by file path or generation
// parameters.
//
// The digest covers the in-memory representation, not the BPT1 byte
// stream, so it is insensitive to on-disk encoding details and equally
// applicable to generated traces that never touch a file.
func (t *Trace) Digest() [sha256.Size]byte {
	h := sha256.New()
	var hdr [8]byte
	h.Write([]byte("bpred-trace-digest-v1\x00"))
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(t.Name)))
	h.Write(hdr[:])
	h.Write([]byte(t.Name))
	binary.LittleEndian.PutUint64(hdr[:], t.Instructions)
	h.Write(hdr[:])
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(t.Branches)))
	h.Write(hdr[:])

	// Records are hashed in fixed-width little-endian blocks; buffering
	// amortizes the hasher's call overhead over ~3800 records at a time.
	const recSize = 8 + 8 + 1
	buf := make([]byte, 0, recSize*3855)
	for i := range t.Branches {
		b := &t.Branches[i]
		var rec [recSize]byte
		binary.LittleEndian.PutUint64(rec[0:], b.PC)
		binary.LittleEndian.PutUint64(rec[8:], b.Target)
		if b.Taken {
			rec[16] = 1
		}
		buf = append(buf, rec[:]...)
		if len(buf)+recSize > cap(buf) {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	h.Write(buf)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}
