package trace

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// craftHeader builds a BPT1 header with arbitrary field values and no
// records.
func craftHeader(name string, nameLen, instrs, count uint64) []byte {
	var buf bytes.Buffer
	buf.Write(magic[:])
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { buf.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	put(nameLen)
	buf.WriteString(name)
	put(instrs)
	put(count)
	return buf.Bytes()
}

// TestHeaderBombRejected is the regression test for the allocation
// bomb: headers promising absurd name lengths or record counts must
// be rejected at parse time, before any proportional allocation.
func TestHeaderBombRejected(t *testing.T) {
	huge := craftHeader("bomb!", 5, 0, 1<<50)
	if _, err := NewReader(bytes.NewReader(huge)); err == nil ||
		!strings.Contains(err.Error(), "unreasonable record count") {
		t.Fatalf("count 1<<50 accepted: %v", err)
	}
	name := craftHeader("", 1<<40, 0, 0)
	if _, err := NewReader(bytes.NewReader(name)); err == nil ||
		!strings.Contains(err.Error(), "unreasonable name length") {
		t.Fatalf("nameLen 1<<40 accepted: %v", err)
	}
	// At the bounds, headers still parse.
	if _, err := NewReader(bytes.NewReader(craftHeader("", 0, 0, maxRecordCount))); err != nil {
		t.Fatalf("count at cap rejected: %v", err)
	}
}

// TestReadFilePreallocCapped checks a header promising a large (but
// in-bounds) record count with no body fails with a truncation error
// instead of preallocating gigabytes.
func TestReadFilePreallocCapped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bomb.bpt")
	// 1<<30 promised records would be 24 GB preallocated uncapped.
	if err := os.WriteFile(path, craftHeader("bomb", 4, 0, 1<<30), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFile(path)
	if err == nil {
		t.Fatal("empty-body trace with huge promised count read successfully")
	}
}
