package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The on-disk trace format, version 2 — columnar and block-oriented,
// so a reader decodes one small block at a time straight from the
// file instead of materializing the whole trace:
//
//	magic    [4]byte  "BPT2"
//	nameLen  uvarint  followed by nameLen bytes of UTF-8 name
//	instrs   uvarint  represented dynamic instruction count
//	count    uvarint  total number of branch records
//	blockLen uvarint  maximum records per block (1..maxBlockLen)
//	blocks, until count records are encoded:
//	  recs    uvarint  records in this block (1..blockLen)
//	  prevPC  uvarint  PC of the record preceding the block (0 first);
//	                   seeds the delta chain so blocks decode
//	                   standalone, which is what makes the index-driven
//	                   seek path possible
//	  pcLen   uvarint  byte length of the PC column
//	  tgtLen  uvarint  byte length of the target column
//	  crc     uint32le IEEE CRC-32 of pcCol ++ tgtCol ++ takenCol
//	  pcCol   recs zigzag varints: delta from previous record's PC
//	  tgtCol  recs zigzag varints: Target - PC
//	  takenCol ceil(recs/8) bytes: outcome bits, LSB-first
//	index (footer, after the last block):
//	  imagic  [4]byte  "BPI2"
//	  payload nblocks uvarint, then per block: size uvarint (encoded
//	          block bytes including its header), recs uvarint
//	  crc     uint32le IEEE CRC-32 of the payload
//	  isize   uint32le bytes from imagic through crc — the trailer a
//	          reader uses to find the index from the end of the file
//
// Splitting the record stream into same-kind columns groups the
// small, similarly-distributed values (PC deltas cluster near zero,
// outcomes are single bits), and bit-packing the taken column drops
// the per-record flags byte BPT1 pays. Block file offsets and
// branch-count offsets are not stored; both fall out of prefix sums
// over the index entries, with the first block starting right after
// the file header.

var (
	magic2      = [4]byte{'B', 'P', 'T', '2'}
	indexMagic2 = [4]byte{'B', 'P', 'I', '2'}
)

const (
	// maxBlockLen bounds a block's record count. A block's decoded
	// form (24 B/record) and its worst-case encoded columns
	// (~21 B/record) both stay near a megabyte even under a hostile
	// header, so nothing allocates unboundedly.
	maxBlockLen = 1 << 16
	// DefaultBlockLen is the writer's default records-per-block. 1024
	// records decode to a 24 KB window — resident in L1d next to the
	// predictor tables, matching the fused kernels' decode tiles.
	DefaultBlockLen = 1024
)

// Writer2 streams a trace to an io.Writer in BPT2 form. The caller
// promises the record count up front (it sits in the header); Close
// verifies the promise and appends the block index.
type Writer2 struct {
	w        *bufio.Writer
	count    uint64 // promised record count
	wrote    uint64
	blockLen int

	// Current block under construction.
	recs     int
	startPC  uint64 // PC preceding the block's first record
	prevPC   uint64
	pcCol    []byte
	tgtCol   []byte
	takenCol []byte

	index []indexEntry
}

type indexEntry struct {
	size uint64 // encoded block bytes, header included
	recs uint64
}

// NewWriter2 writes the BPT2 header and returns a writer expecting
// exactly count branch records. blockLen 0 selects DefaultBlockLen.
func NewWriter2(w io.Writer, name string, instructions, count uint64, blockLen int) (*Writer2, error) {
	if blockLen == 0 {
		blockLen = DefaultBlockLen
	}
	if blockLen < 1 || blockLen > maxBlockLen {
		return nil, fmt.Errorf("trace: block length %d out of range [1,%d]", blockLen, maxBlockLen)
	}
	if uint64(len(name)) > maxNameLen {
		return nil, fmt.Errorf("trace: name length %d exceeds cap %d", len(name), maxNameLen)
	}
	if count > maxRecordCount {
		return nil, fmt.Errorf("trace: record count %d exceeds cap %d", count, maxRecordCount)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic2[:]); err != nil {
		return nil, fmt.Errorf("trace: writing magic: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(len(name))); err != nil {
		return nil, fmt.Errorf("trace: writing name length: %w", err)
	}
	if _, err := bw.WriteString(name); err != nil {
		return nil, fmt.Errorf("trace: writing name: %w", err)
	}
	if err := writeUvarint(instructions); err != nil {
		return nil, fmt.Errorf("trace: writing instruction count: %w", err)
	}
	if err := writeUvarint(count); err != nil {
		return nil, fmt.Errorf("trace: writing record count: %w", err)
	}
	if err := writeUvarint(uint64(blockLen)); err != nil {
		return nil, fmt.Errorf("trace: writing block length: %w", err)
	}
	return &Writer2{
		w:        bw,
		count:    count,
		blockLen: blockLen,
		pcCol:    make([]byte, 0, blockLen*5),
		tgtCol:   make([]byte, 0, blockLen*5),
		takenCol: make([]byte, 0, (blockLen+7)/8),
	}, nil
}

// WriteBranch appends one record, flushing a block whenever blockLen
// records have accumulated. It returns an error if more records are
// written than the header promised.
func (w *Writer2) WriteBranch(b Branch) error {
	if w.wrote >= w.count {
		return fmt.Errorf("trace: record %d exceeds promised count %d", w.wrote+1, w.count)
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], int64(b.PC-w.prevPC))
	w.pcCol = append(w.pcCol, buf[:n]...)
	n = binary.PutVarint(buf[:], int64(b.Target-b.PC))
	w.tgtCol = append(w.tgtCol, buf[:n]...)
	if w.recs%8 == 0 {
		w.takenCol = append(w.takenCol, 0)
	}
	if b.Taken {
		w.takenCol[w.recs/8] |= 1 << (w.recs % 8)
	}
	w.prevPC = b.PC
	w.recs++
	w.wrote++
	if w.recs == w.blockLen {
		return w.flushBlock()
	}
	return nil
}

// flushBlock writes the accumulated block and resets the columns.
func (w *Writer2) flushBlock() error {
	crc := crc32.NewIEEE()
	crc.Write(w.pcCol)
	crc.Write(w.tgtCol)
	crc.Write(w.takenCol)

	var hdr [4*binary.MaxVarintLen64 + 4]byte
	n := binary.PutUvarint(hdr[:], uint64(w.recs))
	n += binary.PutUvarint(hdr[n:], w.startPC)
	n += binary.PutUvarint(hdr[n:], uint64(len(w.pcCol)))
	n += binary.PutUvarint(hdr[n:], uint64(len(w.tgtCol)))
	binary.LittleEndian.PutUint32(hdr[n:], crc.Sum32())
	n += 4
	if _, err := w.w.Write(hdr[:n]); err != nil {
		return fmt.Errorf("trace: writing block header: %w", err)
	}
	for _, col := range [][]byte{w.pcCol, w.tgtCol, w.takenCol} {
		if _, err := w.w.Write(col); err != nil {
			return fmt.Errorf("trace: writing block column: %w", err)
		}
	}
	w.index = append(w.index, indexEntry{
		size: uint64(n) + uint64(len(w.pcCol)) + uint64(len(w.tgtCol)) + uint64(len(w.takenCol)),
		recs: uint64(w.recs),
	})
	w.recs = 0
	w.startPC = w.prevPC
	w.pcCol = w.pcCol[:0]
	w.tgtCol = w.tgtCol[:0]
	w.takenCol = w.takenCol[:0]
	return nil
}

// Close flushes the final partial block, verifies the promised record
// count was met, and appends the footer index.
func (w *Writer2) Close() error {
	if w.wrote != w.count {
		return fmt.Errorf("trace: wrote %d records, header promised %d", w.wrote, w.count)
	}
	if w.recs > 0 {
		if err := w.flushBlock(); err != nil {
			return err
		}
	}
	payload := make([]byte, 0, 2*binary.MaxVarintLen64*(len(w.index)+1))
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(w.index)))
	payload = append(payload, buf[:n]...)
	for _, e := range w.index {
		n = binary.PutUvarint(buf[:], e.size)
		payload = append(payload, buf[:n]...)
		n = binary.PutUvarint(buf[:], e.recs)
		payload = append(payload, buf[:n]...)
	}
	if _, err := w.w.Write(indexMagic2[:]); err != nil {
		return fmt.Errorf("trace: writing index magic: %w", err)
	}
	if _, err := w.w.Write(payload); err != nil {
		return fmt.Errorf("trace: writing index: %w", err)
	}
	var tail [8]byte
	binary.LittleEndian.PutUint32(tail[0:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(tail[4:], uint32(4+len(payload)+4))
	if _, err := w.w.Write(tail[:]); err != nil {
		return fmt.Errorf("trace: writing index trailer: %w", err)
	}
	return w.w.Flush()
}

// reader2 streams a BPT2 trace one block at a time. It implements
// Reader; NextBatch returns zero-copy windows into the single decoded
// block, so at most blockLen records are ever resident.
type reader2 struct {
	br           *bufio.Reader
	name         string
	instructions uint64
	count        uint64
	blockLen     uint64
	read         uint64 // records handed out so far
	prevPC       uint64 // last decoded PC (delta-chain state)
	chained      bool   // prevPC is authoritative (sequential reads)
	err          error

	block   []Branch // decoded current block
	pos     int      // cursor within block
	payload []byte   // raw column scratch, reused across blocks

	index *Index // lazily loaded by FileReader.Index
}

// newReader2 parses the BPT2 header (including the already-sniffed
// magic) and returns a reader positioned at the first record.
func newReader2(br *bufio.Reader) (*reader2, error) {
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic2 {
		return nil, ErrBadMagic
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > maxNameLen {
		return nil, fmt.Errorf("trace: unreasonable name length %d", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	instrs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading instruction count: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading record count: %w", err)
	}
	if count > maxRecordCount {
		return nil, fmt.Errorf("trace: unreasonable record count %d", count)
	}
	blockLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading block length: %w", err)
	}
	if blockLen < 1 || blockLen > maxBlockLen {
		return nil, fmt.Errorf("trace: block length %d out of range [1,%d]", blockLen, maxBlockLen)
	}
	return &reader2{
		br:           br,
		name:         string(nameBuf),
		instructions: instrs,
		count:        count,
		blockLen:     blockLen,
		chained:      true,
	}, nil
}

func (r *reader2) Name() string         { return r.name }
func (r *reader2) Instructions() uint64 { return r.instructions }
func (r *reader2) Count() uint64        { return r.count }
func (r *reader2) Err() error           { return r.err }

// Version reports the on-disk format version, 2.
func (r *reader2) Version() int { return 2 }

// rewind repoints the reader at a new position in the byte stream
// whose next block's first record is record first. The delta chain
// restarts from the block header's prevPC (chained=false) because the
// preceding bytes were skipped, not decoded.
func (r *reader2) rewind(br *bufio.Reader, first uint64) {
	r.br = br
	r.read = first
	r.block = r.block[:0]
	r.pos = 0
	r.err = nil
	r.chained = false
}

// nextBlock decodes the next block into r.block. It returns false at
// end of trace or on error (recorded in r.err).
func (r *reader2) nextBlock() bool {
	if r.err != nil || r.read >= r.count {
		return false
	}
	recs, err := binary.ReadUvarint(r.br)
	if err != nil {
		r.err = fmt.Errorf("trace: reading block header at record %d: %w", r.read, err)
		return false
	}
	if recs < 1 || recs > r.blockLen {
		r.err = fmt.Errorf("trace: block record count %d out of range [1,%d]", recs, r.blockLen)
		return false
	}
	if r.read+recs > r.count {
		r.err = fmt.Errorf("trace: block of %d records overruns promised count %d at record %d", recs, r.count, r.read)
		return false
	}
	startPC, err := binary.ReadUvarint(r.br)
	if err != nil {
		r.err = fmt.Errorf("trace: reading block base pc: %w", err)
		return false
	}
	if r.chained && startPC != r.prevPC {
		r.err = fmt.Errorf("trace: block base pc %#x breaks delta chain (want %#x) at record %d", startPC, r.prevPC, r.read)
		return false
	}
	pcLen, err := binary.ReadUvarint(r.br)
	if err != nil {
		r.err = fmt.Errorf("trace: reading pc column length: %w", err)
		return false
	}
	tgtLen, err := binary.ReadUvarint(r.br)
	if err != nil {
		r.err = fmt.Errorf("trace: reading target column length: %w", err)
		return false
	}
	// A varint is at most 10 bytes, so any honest column is bounded by
	// 10*recs; larger claims are lies and must not drive allocation.
	if pcLen > uint64(binary.MaxVarintLen64)*recs || tgtLen > uint64(binary.MaxVarintLen64)*recs {
		r.err = fmt.Errorf("trace: column lengths %d/%d unreasonable for %d records", pcLen, tgtLen, recs)
		return false
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r.br, crcBuf[:]); err != nil {
		r.err = fmt.Errorf("trace: reading block checksum: %w", err)
		return false
	}
	wantCRC := binary.LittleEndian.Uint32(crcBuf[:])
	takenLen := (recs + 7) / 8
	total := pcLen + tgtLen + takenLen
	if uint64(cap(r.payload)) < total {
		r.payload = make([]byte, total)
	}
	r.payload = r.payload[:total]
	if _, err := io.ReadFull(r.br, r.payload); err != nil {
		r.err = fmt.Errorf("trace: reading block columns at record %d: %w", r.read, err)
		return false
	}
	if got := crc32.ChecksumIEEE(r.payload); got != wantCRC {
		r.err = fmt.Errorf("trace: block checksum mismatch at record %d: got %08x want %08x", r.read, got, wantCRC)
		return false
	}
	pcCol := r.payload[:pcLen]
	tgtCol := r.payload[pcLen : pcLen+tgtLen]
	takenCol := r.payload[pcLen+tgtLen:]

	if uint64(cap(r.block)) < recs {
		r.block = make([]Branch, recs)
	}
	r.block = r.block[:recs]
	pc := startPC
	pi, ti := 0, 0
	for i := uint64(0); i < recs; i++ {
		dPC, n := binary.Varint(pcCol[pi:])
		if n <= 0 {
			r.err = fmt.Errorf("trace: corrupt pc column at record %d", r.read+i)
			return false
		}
		pi += n
		dTgt, n := binary.Varint(tgtCol[ti:])
		if n <= 0 {
			r.err = fmt.Errorf("trace: corrupt target column at record %d", r.read+i)
			return false
		}
		ti += n
		pc += uint64(dPC)
		r.block[i] = Branch{
			PC:     pc,
			Target: pc + uint64(dTgt),
			Taken:  takenCol[i/8]&(1<<(i%8)) != 0,
		}
	}
	if pi != len(pcCol) || ti != len(tgtCol) {
		r.err = fmt.Errorf("trace: block columns have %d/%d trailing bytes at record %d",
			len(pcCol)-pi, len(tgtCol)-ti, r.read)
		return false
	}
	r.prevPC = pc
	r.chained = true
	r.pos = 0
	return true
}

// Next returns the next record. After exhaustion or an error it
// returns ok=false; check Err to distinguish.
func (r *reader2) Next() (Branch, bool) {
	if r.pos >= len(r.block) {
		if !r.nextBlock() {
			return Branch{}, false
		}
	}
	b := r.block[r.pos]
	r.pos++
	r.read++
	return b, true
}

// NextBatch returns a zero-copy window into the current decoded
// block, at most len(buf) records long (buf itself is untouched).
// The window is valid until the following NextBatch call.
func (r *reader2) NextBatch(buf []Branch) []Branch {
	if len(buf) == 0 {
		return nil
	}
	if r.pos >= len(r.block) {
		if !r.nextBlock() {
			return nil
		}
	}
	n := len(r.block) - r.pos
	if n > len(buf) {
		n = len(buf)
	}
	out := r.block[r.pos : r.pos+n]
	r.pos += n
	r.read += uint64(n)
	return out
}

// Index describes a BPT2 file's block layout, reconstructed from the
// footer: per-block file offsets, sizes, and branch-count offsets.
type Index struct {
	// Blocks lists every block in file order.
	Blocks []BlockRef
	// Start is the file offset of the first block (just past the
	// header); End is the offset just past the last block (the index
	// magic).
	Start, End int64
}

// BlockRef locates one block.
type BlockRef struct {
	// Offset is the block's file offset; Size its encoded byte length.
	Offset, Size int64
	// FirstRecord is the branch-count offset of the block's first
	// record; Records is how many records the block holds.
	FirstRecord, Records uint64
}

// ReadIndex parses the footer index of a BPT2 file of the given size.
func ReadIndex(ra io.ReaderAt, size int64) (*Index, error) {
	var tail [4]byte
	if size < 8+4 {
		return nil, fmt.Errorf("trace: file too small (%d bytes) for a BPT2 index", size)
	}
	if _, err := ra.ReadAt(tail[:], size-4); err != nil {
		return nil, fmt.Errorf("trace: reading index trailer: %w", err)
	}
	isize := int64(binary.LittleEndian.Uint32(tail[:]))
	start := size - 4 - isize
	if isize < int64(len(indexMagic2))+1+4 || start < int64(len(magic2)) {
		return nil, fmt.Errorf("trace: implausible index size %d in %d-byte file", isize, size)
	}
	raw := make([]byte, isize)
	if _, err := ra.ReadAt(raw, start); err != nil {
		return nil, fmt.Errorf("trace: reading index: %w", err)
	}
	if [4]byte(raw[:4]) != indexMagic2 {
		return nil, fmt.Errorf("trace: bad index magic %q", raw[:4])
	}
	payload := raw[4 : isize-4]
	wantCRC := binary.LittleEndian.Uint32(raw[isize-4:])
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("trace: index checksum mismatch: got %08x want %08x", got, wantCRC)
	}
	nblocks, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, fmt.Errorf("trace: corrupt index block count")
	}
	// Every entry costs at least two payload bytes, so nblocks beyond
	// that bound is a lie; the check also caps the allocation below.
	if nblocks > uint64(len(payload))/2 {
		return nil, fmt.Errorf("trace: index promises %d blocks in %d payload bytes", nblocks, len(payload))
	}
	payload = payload[n:]
	idx := &Index{Blocks: make([]BlockRef, 0, nblocks), End: start}
	var totalSize int64
	var totalRecs uint64
	for i := uint64(0); i < nblocks; i++ {
		bsize, n := binary.Uvarint(payload)
		if n <= 0 {
			return nil, fmt.Errorf("trace: corrupt index entry %d", i)
		}
		payload = payload[n:]
		brecs, n := binary.Uvarint(payload)
		if n <= 0 {
			return nil, fmt.Errorf("trace: corrupt index entry %d", i)
		}
		payload = payload[n:]
		idx.Blocks = append(idx.Blocks, BlockRef{
			Size:        int64(bsize),
			Records:     brecs,
			FirstRecord: totalRecs,
		})
		totalSize += int64(bsize)
		totalRecs += brecs
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("trace: %d trailing bytes after index entries", len(payload))
	}
	idx.Start = start - totalSize
	if idx.Start < int64(len(magic2)) {
		return nil, fmt.Errorf("trace: index block sizes overrun the file header")
	}
	off := idx.Start
	for i := range idx.Blocks {
		idx.Blocks[i].Offset = off
		off += idx.Blocks[i].Size
	}
	return idx, nil
}

// WriteFile2 writes a whole trace to path in BPT2 form. blockLen 0
// selects DefaultBlockLen.
func WriteFile2(path string, t *Trace, blockLen int) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: closing %s: %w", path, cerr)
		}
	}()
	w, err := NewWriter2(f, t.Name, t.Instructions, uint64(t.Len()), blockLen)
	if err != nil {
		return err
	}
	for _, b := range t.Branches {
		if err := w.WriteBranch(b); err != nil {
			return err
		}
	}
	return w.Close()
}
