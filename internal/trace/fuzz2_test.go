package trace

import (
	"bytes"
	"path/filepath"
	"testing"
)

// FuzzReader2 checks the BPT2 block decoder never panics or loops on
// arbitrary input. Seeds cover a valid multi-block stream, transcoded
// traces from the checked-in refmodel corpus, header fragments, and
// truncations landing inside a block.
func FuzzReader2(f *testing.F) {
	tr := &Trace{Name: "seed2", Instructions: 42, Branches: synthBranches(300, 17)}
	var buf bytes.Buffer
	w, err := NewWriter2(&buf, tr.Name, tr.Instructions, uint64(tr.Len()), 64)
	if err != nil {
		f.Fatal(err)
	}
	for _, b := range tr.Branches {
		if err := w.WriteBranch(b); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:40])
	f.Add([]byte("BPT2"))
	f.Add([]byte{})
	f.Add([]byte("BPT2\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	if paths, err := filepath.Glob(filepath.Join("..", "refmodel", "testdata", "*.bpt")); err == nil {
		for _, p := range paths {
			src, err := ReadFile(p)
			if err != nil {
				continue
			}
			var tb bytes.Buffer
			w2, err := NewWriter2(&tb, src.Name, src.Instructions, uint64(src.Len()), 0)
			if err != nil {
				continue
			}
			for _, b := range src.Branches {
				if err := w2.WriteBranch(b); err != nil {
					break
				}
			}
			if err := w2.Close(); err == nil {
				f.Add(tb.Bytes())
			}
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// The promised count bounds iteration; add our own cap as a
		// belt against decoder bugs.
		for i := 0; i < 1<<20; i++ {
			if _, ok := r.Next(); !ok {
				break
			}
		}
	})
}

// FuzzIndex2 checks the footer-index parser on arbitrary bytes: it
// must reject or parse, never panic or over-allocate.
func FuzzIndex2(f *testing.F) {
	tr := &Trace{Name: "idx", Instructions: 1, Branches: synthBranches(200, 9)}
	var buf bytes.Buffer
	w, err := NewWriter2(&buf, tr.Name, tr.Instructions, uint64(tr.Len()), 32)
	if err != nil {
		f.Fatal(err)
	}
	for _, b := range tr.Branches {
		if err := w.WriteBranch(b); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("BPI2\x00\x00\x00\x00\x00\x09\x00\x00\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := ReadIndex(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		if idx.Start < 0 || idx.End > int64(len(data)) {
			t.Fatalf("index offsets [%d,%d) escape the %d-byte file", idx.Start, idx.End, len(data))
		}
	})
}

// FuzzRoundTrip2 checks arbitrary branch content and block geometry
// written by the BPT2 encoder decode to identical records.
func FuzzRoundTrip2(f *testing.F) {
	f.Add(uint64(0x1000), uint64(0x1100), true, uint64(0x1008), uint64(0x0F00), false, 2)
	f.Add(uint64(0), uint64(0), false, ^uint64(0), uint64(1), true, 1)
	f.Fuzz(func(t *testing.T, pc1, tgt1 uint64, tk1 bool, pc2, tgt2 uint64, tk2 bool, blockLen int) {
		if blockLen < 1 || blockLen > maxBlockLen {
			blockLen = 1 + (blockLen&0x7fffffff)%maxBlockLen
		}
		in := []Branch{
			{PC: pc1, Target: tgt1, Taken: tk1},
			{PC: pc2, Target: tgt2, Taken: tk2},
			{PC: pc1 ^ pc2, Target: tgt1 ^ tgt2, Taken: tk1 != tk2},
		}
		var buf bytes.Buffer
		w, err := NewWriter2(&buf, "fuzz2", 7, uint64(len(in)), blockLen)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range in {
			if err := w.WriteBranch(b); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range in {
			got, ok := r.Next()
			if !ok {
				t.Fatalf("record %d missing: %v", i, r.Err())
			}
			if got != want {
				t.Fatalf("record %d: %+v != %+v", i, got, want)
			}
		}
		if _, ok := r.Next(); ok || r.Err() != nil {
			t.Fatalf("stream did not end cleanly: %v", r.Err())
		}
	})
}
