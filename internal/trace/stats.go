package trace

import (
	"sort"

	"bpred/internal/stats"
)

// BranchProfile summarizes one static branch's dynamic behavior.
type BranchProfile struct {
	PC    uint64
	Count uint64
	Taken uint64
}

// Bias returns max(taken, not-taken)/count — how predictable the
// branch is for a static per-branch predictor. 1.0 means perfectly
// one-sided.
func (p BranchProfile) Bias() float64 {
	if p.Count == 0 {
		return 0
	}
	t := p.Taken
	n := p.Count - p.Taken
	if n > t {
		t = n
	}
	return float64(t) / float64(p.Count)
}

// Stats characterizes a branch trace the way the paper's Tables 1
// and 2 characterize its benchmarks.
type Stats struct {
	// Name is the workload name.
	Name string
	// Instructions is the represented dynamic instruction count.
	Instructions uint64
	// Dynamic is the dynamic conditional branch count.
	Dynamic uint64
	// TakenCount is the number of taken instances.
	TakenCount uint64
	// Static is the number of distinct branch PCs exercised.
	Static int
	// profiles holds per-branch data sorted by descending count.
	profiles []BranchProfile
	coverage *stats.Coverage
}

// Analyze computes trace statistics from a Source. Name and
// instructions are caller-provided metadata (use AnalyzeTrace for
// in-memory traces, which fills them automatically).
func Analyze(src Source, name string, instructions uint64) *Stats {
	counts := make(map[uint64]*BranchProfile)
	s := &Stats{Name: name, Instructions: instructions}
	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		s.Dynamic++
		p := counts[b.PC]
		if p == nil {
			p = &BranchProfile{PC: b.PC}
			counts[b.PC] = p
		}
		p.Count++
		if b.Taken {
			p.Taken++
			s.TakenCount++
		}
	}
	s.Static = len(counts)
	s.profiles = make([]BranchProfile, 0, len(counts))
	weights := make([]uint64, 0, len(counts))
	for _, p := range counts {
		s.profiles = append(s.profiles, *p)
	}
	sort.Slice(s.profiles, func(i, j int) bool {
		if s.profiles[i].Count != s.profiles[j].Count {
			return s.profiles[i].Count > s.profiles[j].Count
		}
		return s.profiles[i].PC < s.profiles[j].PC
	})
	for _, p := range s.profiles {
		weights = append(weights, p.Count)
	}
	s.coverage = stats.NewCoverage(weights)
	return s
}

// AnalyzeTrace characterizes an in-memory trace.
func AnalyzeTrace(t *Trace) *Stats {
	return Analyze(t.NewSource(), t.Name, t.Instructions)
}

// TakenRate returns the fraction of dynamic instances that were taken.
func (s *Stats) TakenRate() float64 {
	if s.Dynamic == 0 {
		return 0
	}
	return float64(s.TakenCount) / float64(s.Dynamic)
}

// BranchFraction returns dynamic conditional branches as a fraction of
// represented instructions (the parenthesized percentage in Table 1).
func (s *Stats) BranchFraction() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Dynamic) / float64(s.Instructions)
}

// StaticFor returns the number of most-frequent static branches
// covering the given fraction of dynamic instances — Table 1's
// "static branches constituting 90%" column with frac=0.9.
func (s *Stats) StaticFor(frac float64) int {
	return s.coverage.ItemsForFraction(frac)
}

// CoverageBuckets returns the number of static branches in each
// consecutive coverage band — Table 2 uses bands 0.50, 0.40, 0.09,
// 0.01.
func (s *Stats) CoverageBuckets(bands []float64) []int {
	return s.coverage.Buckets(bands)
}

// Profiles returns per-branch profiles sorted by descending execution
// count. The returned slice is owned by Stats; callers must not
// modify it.
func (s *Stats) Profiles() []BranchProfile { return s.profiles }

// HighlyBiasedFraction returns the fraction of *dynamic instances*
// arising from branches whose bias is at least threshold. The paper
// observes that large programs execute proportionally more instances
// of highly biased branches (loops, error checks, bounds checks).
func (s *Stats) HighlyBiasedFraction(threshold float64) float64 {
	if s.Dynamic == 0 {
		return 0
	}
	var biased uint64
	for _, p := range s.profiles {
		if p.Bias() >= threshold {
			biased += p.Count
		}
	}
	return float64(biased) / float64(s.Dynamic)
}
