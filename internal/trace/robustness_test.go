package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"bpred/internal/rng"
)

// The reader must reject or cleanly error on arbitrary input — never
// panic, never loop forever.
func TestReaderSurvivesRandomBytes(t *testing.T) {
	f := func(data []byte) bool {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return true // rejected at header: fine
		}
		// Read at most a bounded number of records; the count field
		// limits it anyway but guard against pathology.
		for i := 0; i < 1_000_000; i++ {
			if _, ok := r.Next(); !ok {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// A corrupted valid stream (bit flips after the header) must either
// decode to some records or surface an error — never panic.
func TestReaderSurvivesCorruption(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, tr.Name, tr.Instructions, uint64(tr.Len()))
	for _, b := range tr.Branches {
		_ = w.WriteBranch(b)
	}
	_ = w.Close()
	orig := buf.Bytes()

	g := rng.NewXoshiro256(5)
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, len(orig))
		copy(data, orig)
		// Flip 1-3 bits beyond the magic.
		for k := 0; k < 1+g.Intn(3); k++ {
			pos := 4 + g.Intn(len(data)-4)
			data[pos] ^= byte(1 << g.Intn(8))
		}
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			continue
		}
		for {
			if _, ok := r.Next(); !ok {
				break
			}
		}
		// Err may or may not be set; both are acceptable outcomes.
		_ = r.Err()
	}
}

// Header with an enormous promised record count must not cause a huge
// allocation in ReadFile-style usage; the reader itself streams, so
// only verify Next terminates on truncation.
func TestReaderHugeCountTruncates(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "huge", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	_ = w.WriteBranch(Branch{PC: 4, Target: 8, Taken: true})
	_ = w.WriteBranch(Branch{PC: 8, Target: 12})
	_ = w.Close()
	// Forge the count: rewrite the header with a huge count but keep
	// only two records' worth of payload.
	data := buf.Bytes()
	// Header: magic(4) + nameLen varint(1, value 4) + name(4) +
	// instrs varint(1) + count varint(1, value 2).
	idx := 4 + 1 + 4 + 1
	if data[idx] != 2 {
		t.Fatalf("test assumes count byte at %d, found %d", idx, data[idx])
	}
	data[idx] = 120 // promise 120 records
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("decoded %d records, want 2", n)
	}
	if r.Err() == nil {
		t.Fatal("truncation not reported")
	}
}

// TestReaderTruncationAtEveryPrefix truncates a valid BPT1 stream at
// every byte offset. Each strict prefix must fail cleanly: either the
// header parse errors, or fewer records than promised decode and Err
// reports the truncation — never a panic, never a silently short read.
func TestReaderTruncationAtEveryPrefix(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, tr.Name, tr.Instructions, uint64(tr.Len()))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range tr.Branches {
		if err := w.WriteBranch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	for n := 0; n < len(valid); n++ {
		r, err := NewReader(bytes.NewReader(valid[:n]))
		if err != nil {
			continue // failed at the header: fine
		}
		read := 0
		for {
			if _, ok := r.Next(); !ok {
				break
			}
			read++
		}
		if uint64(read) >= r.Count() {
			t.Errorf("prefix of %d/%d bytes yielded all %d promised records", n, len(valid), read)
		}
		if r.Err() == nil {
			t.Errorf("prefix of %d/%d bytes: %d records decoded with no truncation error", n, len(valid), read)
		}
	}

	// The untruncated stream still decodes fully and cleanly.
	r, err := NewReader(bytes.NewReader(valid))
	if err != nil {
		t.Fatal(err)
	}
	read := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		read++
	}
	if r.Err() != nil || read != tr.Len() {
		t.Fatalf("full stream: %d records (want %d), err %v", read, tr.Len(), r.Err())
	}
}
