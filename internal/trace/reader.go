package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// Reader is the format-versioned trace decoder. Both on-disk formats
// (row-oriented BPT1 and columnar BPT2) satisfy it, so everything
// above this package — the simulator's streaming path, the service's
// ingest/transcode pipeline, cluster trace replication — consumes
// traces without knowing which version backs them.
//
// A Reader is a BatchSource: NextBatch yields chunks sized for the
// simulator's fast path. For BPT2 the chunks are zero-copy windows
// into the reader's single decoded block (one block resident at a
// time); for BPT1 they are filled into the caller's buffer. After
// exhaustion, Err distinguishes clean EOF (nil) from a decode error.
type Reader interface {
	BatchSource
	// Name returns the workload name from the header.
	Name() string
	// Instructions returns the represented dynamic instruction count.
	Instructions() uint64
	// Count returns the number of records the header promises.
	Count() uint64
	// Err returns the first decoding error encountered, or nil.
	Err() error
	// Version reports the on-disk format version (1 or 2).
	Version() int
}

// NewReader sniffs the stream's magic and returns a Reader for
// whichever format version it announces. Unknown magic yields
// ErrBadMagic.
func NewReader(r io.Reader) (Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	m, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	switch {
	case [4]byte(m) == magic:
		rd, err := newReader1(br)
		if err != nil {
			return nil, err
		}
		return rd, nil
	case [4]byte(m) == magic2:
		rd, err := newReader2(br)
		if err != nil {
			return nil, err
		}
		return rd, nil
	}
	return nil, ErrBadMagic
}

// FileReader is a Reader over an opened trace file. For BPT2 files it
// additionally supports index-driven random access via SeekBranch.
type FileReader struct {
	Reader
	f    *os.File
	path string
}

// OpenFile opens path and returns a streaming reader positioned at
// the first record. The caller owns Close.
func OpenFile(path string) (*FileReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	rd, err := NewReader(f)
	if err != nil {
		cerr := f.Close()
		if cerr != nil {
			return nil, fmt.Errorf("trace: %s: %w (and closing: %v)", path, err, cerr)
		}
		return nil, err
	}
	return &FileReader{Reader: rd, f: f, path: path}, nil
}

// Close releases the underlying file.
func (fr *FileReader) Close() error { return fr.f.Close() }

// SeekBranch repositions the reader so the next record returned is
// record n (0-based). Only BPT2 files support seeking — their footer
// index maps branch-count offsets to block offsets; BPT1 files
// return an error.
func (fr *FileReader) SeekBranch(n uint64) error {
	r2, ok := fr.Reader.(*reader2)
	if !ok {
		return fmt.Errorf("trace: %s: seeking requires a BPT2 trace (version %d)", fr.path, fr.Version())
	}
	if n > r2.count {
		return fmt.Errorf("trace: seek to record %d beyond count %d", n, r2.count)
	}
	idx, err := fr.Index()
	if err != nil {
		return err
	}
	// Find the block containing n: the last block whose first-record
	// offset is <= n. Seeking to count positions at EOF.
	bi := len(idx.Blocks) - 1
	for bi > 0 && idx.Blocks[bi].FirstRecord > n {
		bi--
	}
	var off int64
	var first uint64
	if len(idx.Blocks) == 0 || n >= r2.count {
		off, first = idx.End, r2.count
	} else {
		off, first = idx.Blocks[bi].Offset, idx.Blocks[bi].FirstRecord
	}
	if _, err := fr.f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("trace: seeking %s: %w", fr.path, err)
	}
	r2.rewind(bufio.NewReaderSize(fr.f, 1<<16), first)
	// Discard records inside the block until the cursor lands on n.
	for r2.read < n {
		if _, ok := r2.Next(); !ok {
			if err := r2.Err(); err != nil {
				return err
			}
			return fmt.Errorf("trace: %s: block ended before record %d", fr.path, n)
		}
	}
	return nil
}

// Index reads and caches the BPT2 footer index. BPT1 files have no
// index and return an error.
func (fr *FileReader) Index() (*Index, error) {
	r2, ok := fr.Reader.(*reader2)
	if !ok {
		return nil, fmt.Errorf("trace: %s: no index in a version-%d trace", fr.path, fr.Version())
	}
	if r2.index != nil {
		return r2.index, nil
	}
	st, err := fr.f.Stat()
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	idx, err := ReadIndex(fr.f, st.Size())
	if err != nil {
		return nil, err
	}
	r2.index = idx
	return idx, nil
}
