package trace

import (
	"testing"
)

func digestTrace() *Trace {
	tr := &Trace{Name: "digest-sample", Instructions: 100}
	tr.Append(Branch{PC: 0x1000, Target: 0x1100, Taken: true})
	tr.Append(Branch{PC: 0x1008, Target: 0x0F00, Taken: false})
	tr.Append(Branch{PC: 0x1010, Target: 0x1030, Taken: true})
	return tr
}

func TestDigestStable(t *testing.T) {
	a := digestTrace().Digest()
	b := digestTrace().Digest()
	if a != b {
		t.Error("equal traces produced different digests")
	}
}

// TestDigestSensitivity flips each field the digest claims to cover
// and requires the digest to move.
func TestDigestSensitivity(t *testing.T) {
	base := digestTrace().Digest()

	mutations := map[string]func(*Trace){
		"name":         func(tr *Trace) { tr.Name = "other" },
		"instructions": func(tr *Trace) { tr.Instructions++ },
		"branch pc":    func(tr *Trace) { tr.Branches[1].PC ^= 4 },
		"branch target": func(tr *Trace) {
			tr.Branches[2].Target ^= 8
		},
		"branch taken": func(tr *Trace) { tr.Branches[0].Taken = !tr.Branches[0].Taken },
		"append": func(tr *Trace) {
			tr.Append(Branch{PC: 0x2000, Target: 0x2100, Taken: false})
		},
		"truncate": func(tr *Trace) { tr.Branches = tr.Branches[:len(tr.Branches)-1] },
	}
	for name, mutate := range mutations {
		tr := digestTrace()
		mutate(tr)
		if tr.Digest() == base {
			t.Errorf("mutating %s left the digest unchanged", name)
		}
	}
}

// TestDigestFieldBoundaries guards against concatenation ambiguity:
// moving bytes between length-prefixed fields must change the digest.
func TestDigestFieldBoundaries(t *testing.T) {
	a := &Trace{Name: "ab", Instructions: 1}
	b := &Trace{Name: "a", Instructions: 1}
	if a.Digest() == b.Digest() {
		t.Error("name boundary not covered by the digest")
	}
}

// TestDigestLargeTraceBuffered crosses the internal hashing buffer
// boundary (~3855 records) and checks the buffered path agrees with
// itself and remains order-sensitive.
func TestDigestLargeTraceBuffered(t *testing.T) {
	const n = 10_000
	mk := func() *Trace {
		tr := &Trace{Name: "big", Instructions: n}
		for i := 0; i < n; i++ {
			tr.Append(Branch{PC: uint64(i) << 2, Target: uint64(i+1) << 2, Taken: i%3 == 0})
		}
		return tr
	}
	if mk().Digest() != mk().Digest() {
		t.Error("large-trace digest unstable")
	}
	swapped := mk()
	swapped.Branches[0], swapped.Branches[n-1] = swapped.Branches[n-1], swapped.Branches[0]
	if swapped.Digest() == mk().Digest() {
		t.Error("digest insensitive to record order")
	}
}
