package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"path/filepath"
	"testing"
	"testing/quick"
)

func sample() *Trace {
	return &Trace{
		Name:         "sample",
		Instructions: 1000,
		Branches: []Branch{
			{PC: 0x1000, Target: 0x0F00, Taken: true},
			{PC: 0x1008, Target: 0x1100, Taken: false},
			{PC: 0x1000, Target: 0x0F00, Taken: true},
			{PC: 0x2000, Target: 0x2040, Taken: true},
		},
	}
}

func TestSourceIteration(t *testing.T) {
	tr := sample()
	src := tr.NewSource()
	for i := 0; i < tr.Len(); i++ {
		b, ok := src.Next()
		if !ok {
			t.Fatalf("source ended early at %d", i)
		}
		if b != tr.Branches[i] {
			t.Fatalf("record %d = %+v, want %+v", i, b, tr.Branches[i])
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("source did not end")
	}
	// A second Next after exhaustion stays exhausted.
	if _, ok := src.Next(); ok {
		t.Fatal("exhausted source revived")
	}
}

func TestSliceScalesMetadata(t *testing.T) {
	tr := sample()
	sub := tr.Slice(1, 3)
	if sub.Len() != 2 {
		t.Fatalf("sub length %d, want 2", sub.Len())
	}
	if sub.Instructions != 500 {
		t.Fatalf("sub instructions %d, want 500", sub.Instructions)
	}
	if sub.Branches[0] != tr.Branches[1] {
		t.Fatal("slice misaligned")
	}
}

func TestRoundTripInMemory(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, tr.Name, tr.Instructions, uint64(tr.Len()))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range tr.Branches {
		if err := w.WriteBranch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != tr.Name || r.Instructions() != tr.Instructions || r.Count() != uint64(tr.Len()) {
		t.Fatalf("header mismatch: %q/%d/%d", r.Name(), r.Instructions(), r.Count())
	}
	for i, want := range tr.Branches {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("reader ended at %d: %v", i, r.Err())
		}
		if got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("reader overran promised count")
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestRoundTripFile(t *testing.T) {
	tr := sample()
	path := filepath.Join(t.TempDir(), "sample.bpt")
	if err := WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Instructions != tr.Instructions || got.Len() != tr.Len() {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	for i := range tr.Branches {
		if got.Branches[i] != tr.Branches[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE????????"))); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestReaderRejectsTruncation(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, tr.Name, tr.Instructions, uint64(tr.Len()))
	for _, b := range tr.Branches {
		_ = w.WriteBranch(b)
	}
	_ = w.Close()
	// Chop off the tail.
	data := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if r.Err() == nil {
		t.Fatalf("truncated stream read %d records with no error", n)
	}
}

func TestWriterEnforcesCount(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "x", 0, 1)
	if err := w.WriteBranch(Branch{}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBranch(Branch{}); err == nil {
		t.Fatal("writer accepted more records than promised")
	}
	// Underrun detection.
	var buf2 bytes.Buffer
	w2, _ := NewWriter(&buf2, "x", 0, 2)
	_ = w2.WriteBranch(Branch{})
	if err := w2.Close(); err == nil {
		t.Fatal("Close accepted an underrun")
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	tr := &Trace{Name: "empty"}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, tr.Name, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("empty trace yielded a record")
	}
}

// Property: arbitrary branch sequences round-trip exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(pcs []uint32, takens []bool) bool {
		n := len(pcs)
		if len(takens) < n {
			n = len(takens)
		}
		tr := &Trace{Name: "prop"}
		for i := 0; i < n; i++ {
			tr.Append(Branch{
				PC:     uint64(pcs[i]) &^ 3,
				Target: uint64(pcs[i])&^3 + 8,
				Taken:  takens[i],
			})
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, tr.Name, 0, uint64(tr.Len()))
		if err != nil {
			return false
		}
		for _, b := range tr.Branches {
			if err := w.WriteBranch(b); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for i := 0; i < tr.Len(); i++ {
			got, ok := r.Next()
			if !ok || got != tr.Branches[i] {
				return false
			}
		}
		_, ok := r.Next()
		return !ok && r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCompression(t *testing.T) {
	// Locality-heavy traces should encode in well under 16 bytes/record.
	tr := &Trace{Name: "dense"}
	pc := uint64(0x10000)
	for i := 0; i < 10000; i++ {
		pc += 8
		if pc > 0x12000 {
			pc = 0x10000
		}
		tr.Append(Branch{PC: pc, Target: pc + 32, Taken: i%3 != 0})
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, tr.Name, 0, uint64(tr.Len()))
	for _, b := range tr.Branches {
		_ = w.WriteBranch(b)
	}
	_ = w.Close()
	perRecord := float64(buf.Len()) / float64(tr.Len())
	if perRecord > 8 {
		t.Errorf("encoding %.1f bytes/record; delta coding is broken", perRecord)
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errWriteFail
	}
	n := len(p)
	if n > f.after {
		n = f.after
	}
	f.after -= n
	if n < len(p) {
		return n, errWriteFail
	}
	return n, nil
}

var errWriteFail = errors.New("synthetic write failure")

func TestWriterPropagatesIOErrors(t *testing.T) {
	// Header write failure.
	if _, err := NewWriter(&failWriter{after: 2}, "x", 1, 1); err == nil {
		// The bufio layer may defer the error past the header; force
		// it through a record + close.
		w, _ := NewWriter(&failWriter{after: 2}, "x", 1, 1)
		if w != nil {
			_ = w.WriteBranch(Branch{PC: 4, Target: 8})
			if cerr := w.Close(); cerr == nil {
				t.Fatal("no error surfaced through a failing writer")
			}
		}
	}
}

func TestWriteFileToBadPath(t *testing.T) {
	if err := WriteFile("/nonexistent-dir-xyz/file.bpt", &Trace{Name: "x"}); err == nil {
		t.Fatal("WriteFile to bad path succeeded")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile("/nonexistent-dir-xyz/file.bpt"); err == nil {
		t.Fatal("ReadFile of missing file succeeded")
	}
}

func TestReaderRejectsHugeName(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte("BPT1"))
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], 1<<20) // unreasonable name length
	buf.Write(tmp[:n])
	if _, err := NewReader(&buf); err == nil {
		t.Fatal("reader accepted a 1MB name length")
	}
}

// fakeSource is a plain Source (no batch support) for adapter tests.
type fakeSource struct {
	branches []Branch
	pos      int
}

func (s *fakeSource) Next() (Branch, bool) {
	if s.pos >= len(s.branches) {
		return Branch{}, false
	}
	b := s.branches[s.pos]
	s.pos++
	return b, true
}

func TestBatchSourceWindows(t *testing.T) {
	tr := sample()
	bs, ok := tr.NewSource().(BatchSource)
	if !ok {
		t.Fatal("in-memory source does not implement BatchSource")
	}
	buf := make([]Branch, 3)
	var got []Branch
	for {
		chunk := bs.NextBatch(buf)
		if len(chunk) == 0 {
			break
		}
		if len(chunk) > len(buf) {
			t.Fatalf("chunk of %d exceeds buffer %d", len(chunk), len(buf))
		}
		// In-memory batches must be zero-copy windows into the trace.
		if &chunk[0] != &tr.Branches[len(got)] {
			t.Fatalf("chunk at offset %d is not a direct window", len(got))
		}
		got = append(got, chunk...)
	}
	if len(got) != tr.Len() {
		t.Fatalf("batched iteration yielded %d branches, want %d", len(got), tr.Len())
	}
	for i := range got {
		if got[i] != tr.Branches[i] {
			t.Fatalf("branch %d = %+v, want %+v", i, got[i], tr.Branches[i])
		}
	}
}

func TestBatchSourceMixedWithNext(t *testing.T) {
	tr := sample()
	bs := tr.NewSource().(BatchSource)
	if b, ok := bs.Next(); !ok || b != tr.Branches[0] {
		t.Fatalf("Next = %+v, %v", b, ok)
	}
	chunk := bs.NextBatch(make([]Branch, 2))
	if len(chunk) != 2 || chunk[0] != tr.Branches[1] || chunk[1] != tr.Branches[2] {
		t.Fatalf("NextBatch after Next = %+v", chunk)
	}
	if b, ok := bs.Next(); !ok || b != tr.Branches[3] {
		t.Fatalf("Next after NextBatch = %+v, %v", b, ok)
	}
	if chunk := bs.NextBatch(make([]Branch, 2)); len(chunk) != 0 {
		t.Fatalf("exhausted NextBatch returned %d branches", len(chunk))
	}
}

func TestAsBatchAdapter(t *testing.T) {
	tr := sample()
	bs := AsBatch(&fakeSource{branches: tr.Branches})
	buf := make([]Branch, 3)
	var got []Branch
	for {
		chunk := bs.NextBatch(buf)
		if len(chunk) == 0 {
			break
		}
		got = append(got, chunk...)
	}
	if len(got) != tr.Len() {
		t.Fatalf("adapter yielded %d branches, want %d", len(got), tr.Len())
	}
	for i := range got {
		if got[i] != tr.Branches[i] {
			t.Fatalf("branch %d = %+v, want %+v", i, got[i], tr.Branches[i])
		}
	}
	// AsBatch must not double-wrap an existing BatchSource.
	inner := tr.NewSource()
	if AsBatch(inner) != inner {
		t.Fatal("AsBatch re-wrapped a BatchSource")
	}
}

func TestSliceMetadataOverflow(t *testing.T) {
	// Instructions * (hi-lo) overflows uint64 when computed naively:
	// 2^62 instructions over a 1M-branch trace.
	tr := &Trace{Name: "huge", Instructions: 1 << 62}
	tr.Branches = make([]Branch, 1<<20)
	half := tr.Slice(0, tr.Len()/2)
	if want := uint64(1) << 61; half.Instructions != want {
		t.Fatalf("half-slice Instructions = %d, want %d", half.Instructions, want)
	}
	full := tr.Slice(0, tr.Len())
	if full.Instructions != tr.Instructions {
		t.Fatalf("full-slice Instructions = %d, want %d", full.Instructions, tr.Instructions)
	}
	empty := tr.Slice(3, 3)
	if empty.Instructions != 0 {
		t.Fatalf("empty-slice Instructions = %d, want 0", empty.Instructions)
	}
}
