package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// The on-disk trace format, version 1:
//
//	magic   [4]byte  "BPT1"
//	nameLen uvarint  followed by nameLen bytes of UTF-8 name
//	instrs  uvarint  represented dynamic instruction count
//	count   uvarint  number of branch records
//	records count times:
//	  flags  byte     bit0 = taken
//	  dPC    varint   zigzag delta from previous record's PC
//	  dTgt   varint   zigzag delta from this record's PC to Target
//
// Delta encoding keeps files small: consecutive branches are usually
// near each other in the text segment, and targets are near their
// branches, so most records fit in 4-6 bytes.

var magic = [4]byte{'B', 'P', 'T', '1'}

// Header sanity bounds. Header fields are attacker-controlled (traces
// are shared artifacts), so nothing allocates proportionally to a
// header value beyond these caps.
const (
	// maxNameLen bounds the workload name; real names are tens of
	// bytes.
	maxNameLen = 1 << 16
	// maxRecordCount bounds the promised record count. Records are at
	// least 3 bytes on disk, so no honest trace under 3 TB exceeds it,
	// and iteration bounded by a lie this size still terminates.
	maxRecordCount = 1 << 40
	// preallocRecords caps ReadFile's upfront allocation (24 MB of
	// Branch records); a header promising more only grows the slice as
	// records actually decode.
	preallocRecords = 1 << 20
)

// ErrBadMagic indicates the stream is not a branch trace in any
// format version this package knows (BPT1 or BPT2).
var ErrBadMagic = errors.New("trace: bad magic; not a BPT1/BPT2 trace")

// Writer streams a trace to an io.Writer.
type Writer struct {
	w      *bufio.Writer
	prevPC uint64
	wrote  uint64
	count  uint64 // promised record count
}

// NewWriter writes the header for a trace with the given metadata and
// returns a Writer expecting exactly count branch records.
func NewWriter(w io.Writer, name string, instructions, count uint64) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing magic: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(len(name))); err != nil {
		return nil, fmt.Errorf("trace: writing name length: %w", err)
	}
	if _, err := bw.WriteString(name); err != nil {
		return nil, fmt.Errorf("trace: writing name: %w", err)
	}
	if err := writeUvarint(instructions); err != nil {
		return nil, fmt.Errorf("trace: writing instruction count: %w", err)
	}
	if err := writeUvarint(count); err != nil {
		return nil, fmt.Errorf("trace: writing record count: %w", err)
	}
	return &Writer{w: bw, count: count}, nil
}

// WriteBranch appends one record. It returns an error if more records
// are written than the header promised.
func (w *Writer) WriteBranch(b Branch) error {
	if w.wrote >= w.count {
		return fmt.Errorf("trace: record %d exceeds promised count %d", w.wrote+1, w.count)
	}
	var buf [1 + 2*binary.MaxVarintLen64]byte
	flags := byte(0)
	if b.Taken {
		flags = 1
	}
	buf[0] = flags
	n := 1
	n += binary.PutVarint(buf[n:], int64(b.PC-w.prevPC))
	n += binary.PutVarint(buf[n:], int64(b.Target-b.PC))
	if _, err := w.w.Write(buf[:n]); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	w.prevPC = b.PC
	w.wrote++
	return nil
}

// Close flushes buffered data and verifies the promised record count
// was met.
func (w *Writer) Close() error {
	if w.wrote != w.count {
		return fmt.Errorf("trace: wrote %d records, header promised %d", w.wrote, w.count)
	}
	return w.w.Flush()
}

// reader1 streams a BPT1 trace. It implements Reader.
type reader1 struct {
	r            *bufio.Reader
	name         string
	instructions uint64
	count        uint64
	read         uint64
	prevPC       uint64
	err          error
}

// newReader1 parses the BPT1 header (including the already-sniffed
// magic) and returns a reader positioned at the first record.
func newReader1(br *bufio.Reader) (*reader1, error) {
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > maxNameLen {
		return nil, fmt.Errorf("trace: unreasonable name length %d", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	instrs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading instruction count: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading record count: %w", err)
	}
	if count > maxRecordCount {
		return nil, fmt.Errorf("trace: unreasonable record count %d", count)
	}
	return &reader1{r: br, name: string(nameBuf), instructions: instrs, count: count}, nil
}

// Name returns the workload name from the header.
func (r *reader1) Name() string { return r.name }

// Instructions returns the represented instruction count.
func (r *reader1) Instructions() uint64 { return r.instructions }

// Count returns the number of records the header promises.
func (r *reader1) Count() uint64 { return r.count }

// Version reports the on-disk format version, 1.
func (r *reader1) Version() int { return 1 }

// NextBatch fills buf by repeated decode; BPT1 is row-oriented so
// there is no block to window into.
func (r *reader1) NextBatch(buf []Branch) []Branch {
	n := 0
	for n < len(buf) {
		b, ok := r.Next()
		if !ok {
			break
		}
		buf[n] = b
		n++
	}
	return buf[:n]
}

// Next returns the next record. After exhaustion or an error it
// returns ok=false; check Err to distinguish.
func (r *reader1) Next() (Branch, bool) {
	if r.err != nil || r.read >= r.count {
		return Branch{}, false
	}
	flags, err := r.r.ReadByte()
	if err != nil {
		r.err = fmt.Errorf("trace: reading record %d flags: %w", r.read, err)
		return Branch{}, false
	}
	dPC, err := binary.ReadVarint(r.r)
	if err != nil {
		r.err = fmt.Errorf("trace: reading record %d pc: %w", r.read, err)
		return Branch{}, false
	}
	dTgt, err := binary.ReadVarint(r.r)
	if err != nil {
		r.err = fmt.Errorf("trace: reading record %d target: %w", r.read, err)
		return Branch{}, false
	}
	pc := r.prevPC + uint64(dPC)
	r.prevPC = pc
	r.read++
	return Branch{PC: pc, Target: pc + uint64(dTgt), Taken: flags&1 != 0}, true
}

// Err returns the first decoding error encountered, or nil.
func (r *reader1) Err() error { return r.err }

// WriteFile writes a whole trace to path.
func WriteFile(path string, t *Trace) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: closing %s: %w", path, cerr)
		}
	}()
	w, err := NewWriter(f, t.Name, t.Instructions, uint64(t.Len()))
	if err != nil {
		return err
	}
	for _, b := range t.Branches {
		if err := w.WriteBranch(b); err != nil {
			return err
		}
	}
	return w.Close()
}

// ReadFile loads a whole trace from path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		return nil, err
	}
	pre := r.Count()
	if pre > preallocRecords {
		pre = preallocRecords
	}
	t := &Trace{
		Name:         r.Name(),
		Instructions: r.Instructions(),
		Branches:     make([]Branch, 0, pre),
	}
	for {
		b, ok := r.Next()
		if !ok {
			break
		}
		t.Branches = append(t.Branches, b)
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	if uint64(t.Len()) != r.Count() {
		return nil, fmt.Errorf("trace: %s truncated: %d of %d records", path, t.Len(), r.Count())
	}
	return t, nil
}
