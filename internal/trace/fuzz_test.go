package trace

import (
	"bytes"
	"testing"
)

// FuzzReader checks the trace decoder never panics or loops on
// arbitrary input, and that everything the writer produces decodes
// back exactly.
func FuzzReader(f *testing.F) {
	// Seed with a valid stream.
	tr := &Trace{Name: "seed", Instructions: 42}
	tr.Append(Branch{PC: 0x1000, Target: 0x1100, Taken: true})
	tr.Append(Branch{PC: 0x1008, Target: 0x0F00, Taken: false})
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, tr.Name, tr.Instructions, uint64(tr.Len()))
	for _, b := range tr.Branches {
		_ = w.WriteBranch(b)
	}
	_ = w.Close()
	f.Add(buf.Bytes())
	f.Add([]byte("BPT1"))
	f.Add([]byte{})
	f.Add([]byte("BPT1\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	// The allocation-bomb crasher: a header promising 2^50 records
	// (also checked into testdata/fuzz/FuzzReader).
	f.Add(craftHeader("bomb!", 5, 0, 1<<50))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// The promised count bounds iteration; add our own cap as a
		// belt against decoder bugs.
		for i := 0; i < 1<<20; i++ {
			if _, ok := r.Next(); !ok {
				break
			}
		}
	})
}

// FuzzRoundTrip checks arbitrary branch content written by the
// encoder decodes to identical records.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0x1000), uint64(0x1100), true, uint64(0x1008), uint64(0x0F00), false)
	f.Fuzz(func(t *testing.T, pc1, tgt1 uint64, tk1 bool, pc2, tgt2 uint64, tk2 bool) {
		in := []Branch{
			{PC: pc1, Target: tgt1, Taken: tk1},
			{PC: pc2, Target: tgt2, Taken: tk2},
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, "fuzz", 7, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range in {
			if err := w.WriteBranch(b); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range in {
			got, ok := r.Next()
			if !ok {
				t.Fatalf("record %d missing: %v", i, r.Err())
			}
			if got != want {
				t.Fatalf("record %d: %+v != %+v", i, got, want)
			}
		}
	})
}
