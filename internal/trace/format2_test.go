package trace

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// synthBranches builds n deterministic records with realistic deltas
// (clustered PCs, nearby targets, biased outcomes) plus occasional
// wild jumps so both the small- and large-varint paths encode.
func synthBranches(n int, seed uint64) []Branch {
	out := make([]Branch, n)
	x := seed | 1
	pc := uint64(0x10000)
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		switch x % 7 {
		case 0:
			pc = x // wild jump, exercises 10-byte varints
		default:
			pc += 4 * (x % 64)
		}
		out[i] = Branch{PC: pc, Target: pc + 4*(x%512) - 1024, Taken: x%3 == 0}
	}
	return out
}

func encode2(t *testing.T, tr *Trace, blockLen int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter2(&buf, tr.Name, tr.Instructions, uint64(tr.Len()), blockLen)
	if err != nil {
		t.Fatalf("NewWriter2: %v", err)
	}
	for _, b := range tr.Branches {
		if err := w.WriteBranch(b); err != nil {
			t.Fatalf("WriteBranch: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestBPT2RoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, DefaultBlockLen - 1, DefaultBlockLen, DefaultBlockLen + 1, 3*DefaultBlockLen + 17} {
		tr := &Trace{Name: "rt", Instructions: uint64(n) * 5, Branches: synthBranches(n, uint64(n)+1)}
		data := encode2(t, tr, 0)
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("n=%d: NewReader: %v", n, err)
		}
		if r.Version() != 2 {
			t.Fatalf("n=%d: version %d, want 2", n, r.Version())
		}
		if r.Name() != tr.Name || r.Instructions() != tr.Instructions || r.Count() != uint64(n) {
			t.Fatalf("n=%d: header mismatch: %q/%d/%d", n, r.Name(), r.Instructions(), r.Count())
		}
		for i, want := range tr.Branches {
			got, ok := r.Next()
			if !ok {
				t.Fatalf("n=%d: record %d missing: %v", n, i, r.Err())
			}
			if got != want {
				t.Fatalf("n=%d: record %d: %+v != %+v", n, i, got, want)
			}
		}
		if _, ok := r.Next(); ok {
			t.Fatalf("n=%d: spurious record past count", n)
		}
		if r.Err() != nil {
			t.Fatalf("n=%d: Err after clean read: %v", n, r.Err())
		}
	}
}

// TestBPT2NextBatchWindows checks the zero-copy batch path yields the
// same stream for every batch size, including sizes that straddle
// block boundaries.
func TestBPT2NextBatchWindows(t *testing.T) {
	tr := &Trace{Name: "nb", Instructions: 9, Branches: synthBranches(2500, 3)}
	data := encode2(t, tr, 64) // many small blocks
	for _, bs := range []int{1, 3, 63, 64, 65, 200, 4096} {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]Branch, bs)
		var got []Branch
		for {
			chunk := r.NextBatch(buf)
			if len(chunk) == 0 {
				break
			}
			got = append(got, chunk...)
		}
		if r.Err() != nil {
			t.Fatalf("bs=%d: %v", bs, r.Err())
		}
		if len(got) != tr.Len() {
			t.Fatalf("bs=%d: %d records, want %d", bs, len(got), tr.Len())
		}
		for i := range got {
			if got[i] != tr.Branches[i] {
				t.Fatalf("bs=%d: record %d: %+v != %+v", bs, i, got[i], tr.Branches[i])
			}
		}
	}
}

// TestBPT1BPT2Equivalence proves the two encodings of one trace
// decode identically and share a content digest — the property the
// service's transcoding ingest path relies on.
func TestBPT1BPT2Equivalence(t *testing.T) {
	tr := &Trace{Name: "equiv", Instructions: 12345, Branches: synthBranches(3000, 99)}
	var b1 bytes.Buffer
	w1, err := NewWriter(&b1, tr.Name, tr.Instructions, uint64(tr.Len()))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range tr.Branches {
		if err := w1.WriteBranch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	b2 := encode2(t, tr, 0)

	decode := func(data []byte) *Trace {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		out := &Trace{Name: r.Name(), Instructions: r.Instructions()}
		for {
			b, ok := r.Next()
			if !ok {
				break
			}
			out.Append(b)
		}
		if r.Err() != nil {
			t.Fatal(r.Err())
		}
		return out
	}
	d1, d2 := decode(b1.Bytes()), decode(b2)
	if d1.Name != d2.Name || d1.Instructions != d2.Instructions || len(d1.Branches) != len(d2.Branches) {
		t.Fatalf("metadata diverges: %q/%d/%d vs %q/%d/%d",
			d1.Name, d1.Instructions, len(d1.Branches), d2.Name, d2.Instructions, len(d2.Branches))
	}
	for i := range d1.Branches {
		if d1.Branches[i] != d2.Branches[i] {
			t.Fatalf("record %d diverges: %+v != %+v", i, d1.Branches[i], d2.Branches[i])
		}
	}
	if d1.Digest() != d2.Digest() {
		t.Fatal("digest differs between BPT1 and BPT2 decodes of the same trace")
	}
	if d1.Digest() != tr.Digest() {
		t.Fatal("decoded digest differs from source digest")
	}
}

func TestBPT2CorruptionDetected(t *testing.T) {
	tr := &Trace{Name: "crc", Instructions: 1, Branches: synthBranches(300, 7)}
	data := encode2(t, tr, 128)

	drain := func(data []byte) error {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return err
		}
		for {
			if _, ok := r.Next(); !ok {
				break
			}
		}
		return r.Err()
	}
	if err := drain(data); err != nil {
		t.Fatalf("pristine stream: %v", err)
	}
	// Flip one bit in every byte position after the file header; every
	// flip must surface as an error (checksum, chain break, or column
	// shape), never as a silently different decode. Positions inside
	// the index are exempt — sequential streaming never reads it.
	idx, err := ReadIndex(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatalf("ReadIndex: %v", err)
	}
	for pos := idx.Start; pos < idx.End; pos++ {
		mut := bytes.Clone(data)
		mut[pos] ^= 0x40
		if err := drain(mut); err == nil {
			r, _ := NewReader(bytes.NewReader(mut))
			same := true
			for i := 0; ; i++ {
				b, ok := r.Next()
				if !ok {
					same = same && i == tr.Len()
					break
				}
				if i >= tr.Len() || b != tr.Branches[i] {
					same = false
					break
				}
			}
			if !same {
				t.Fatalf("bit flip at %d decoded differently without an error", pos)
			}
		}
	}
	// Truncations must error, not silently shorten.
	for _, cut := range []int{int(idx.End) - 1, int(idx.Start) + 5, len(data) / 2} {
		if err := drain(data[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
}

func TestBPT2LyingBlockHeader(t *testing.T) {
	// A block claiming more records than the file header's count must
	// be rejected before any column allocation proportional to the lie.
	var buf bytes.Buffer
	buf.Write(magic2[:])
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	put(0) // nameLen
	put(0) // instrs
	put(4) // count
	put(DefaultBlockLen)
	put(1 << 60) // block recs: absurd
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("header should parse: %v", err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("lying block header yielded a record")
	}
	if r.Err() == nil {
		t.Fatal("lying block header produced no error")
	}
}

func TestBPT2IndexAndSeek(t *testing.T) {
	tr := &Trace{Name: "seek", Instructions: 4, Branches: synthBranches(1000, 21)}
	dir := t.TempDir()
	path := filepath.Join(dir, "seek.bpt2")
	if err := WriteFile2(path, tr, 128); err != nil {
		t.Fatal(err)
	}
	fr, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	idx, err := fr.Index()
	if err != nil {
		t.Fatal(err)
	}
	if want := (1000 + 127) / 128; len(idx.Blocks) != want {
		t.Fatalf("%d index blocks, want %d", len(idx.Blocks), want)
	}
	var total uint64
	for i, b := range idx.Blocks {
		if b.FirstRecord != total {
			t.Fatalf("block %d first record %d, want %d", i, b.FirstRecord, total)
		}
		total += b.Records
	}
	if total != 1000 {
		t.Fatalf("index records sum %d, want 1000", total)
	}
	for _, n := range []uint64{0, 1, 127, 128, 500, 999, 1000} {
		if err := fr.SeekBranch(n); err != nil {
			t.Fatalf("SeekBranch(%d): %v", n, err)
		}
		b, ok := fr.Next()
		if n == 1000 {
			if ok {
				t.Fatal("record past end after seek to count")
			}
			if fr.Err() != nil {
				t.Fatalf("seek to count: %v", fr.Err())
			}
			continue
		}
		if !ok {
			t.Fatalf("SeekBranch(%d): no record: %v", n, fr.Err())
		}
		if b != tr.Branches[n] {
			t.Fatalf("SeekBranch(%d): %+v != %+v", n, b, tr.Branches[n])
		}
		// The stream must continue cleanly from the seek point.
		for i := n + 1; i < 1000; i++ {
			got, ok := fr.Next()
			if !ok {
				t.Fatalf("record %d after seek to %d missing: %v", i, n, fr.Err())
			}
			if got != tr.Branches[i] {
				t.Fatalf("record %d after seek to %d: %+v != %+v", i, n, got, tr.Branches[i])
			}
		}
	}
}

// TestReadFileSniffsBPT2 checks the whole-file loader transparently
// reads both format versions.
func TestReadFileSniffsBPT2(t *testing.T) {
	tr := &Trace{Name: "sniff", Instructions: 2, Branches: synthBranches(50, 5)}
	dir := t.TempDir()
	p2 := filepath.Join(dir, "t.bpt2")
	if err := WriteFile2(p2, tr, 0); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != tr.Digest() {
		t.Fatal("ReadFile of BPT2 lost content")
	}
}

func TestDigestWriterMatchesTraceDigest(t *testing.T) {
	tr := &Trace{Name: "digest", Instructions: 777, Branches: synthBranches(5000, 11)}
	d := NewDigestWriter(tr.Name, tr.Instructions, uint64(tr.Len()))
	for _, b := range tr.Branches {
		d.WriteBranch(b)
	}
	if d.Sum() != tr.Digest() {
		t.Fatal("streaming digest diverges from Trace.Digest")
	}
	// Empty trace too: only the preamble is hashed.
	e := &Trace{Name: "", Instructions: 0}
	if NewDigestWriter("", 0, 0).Sum() != e.Digest() {
		t.Fatal("streaming digest diverges for the empty trace")
	}
}

// TestWriter2CountContract mirrors the BPT1 writer's promise checks.
func TestWriter2CountContract(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter2(&buf, "c", 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close with missing records succeeded")
	}
	if err := w.WriteBranch(Branch{}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBranch(Branch{}); err == nil {
		t.Fatal("overrun write succeeded")
	}
	if _, err := NewWriter2(&buf, "c", 0, 1, maxBlockLen+1); err == nil {
		t.Fatal("oversized blockLen accepted")
	}
}

// TestBPT2SmallerThanBPT1 locks in the size win on a realistic
// stream: dropping the per-record flags byte for bit-packed outcomes
// must shrink the encoding.
func TestBPT2SmallerThanBPT1(t *testing.T) {
	tr := &Trace{Name: "size", Instructions: 1, Branches: synthBranches(20000, 13)}
	var b1 bytes.Buffer
	w1, err := NewWriter(&b1, tr.Name, tr.Instructions, uint64(tr.Len()))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range tr.Branches {
		if err := w1.WriteBranch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	b2 := encode2(t, tr, 0)
	if len(b2) >= b1.Len() {
		t.Fatalf("BPT2 (%d bytes) not smaller than BPT1 (%d bytes)", len(b2), b1.Len())
	}
}

// TestBPT2CorpusTranscode transcodes the checked-in refmodel corpus
// and verifies digest-preserving round trips — the same operation
// bptrace convert and the service ingest path perform.
func TestBPT2CorpusTranscode(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "refmodel", "testdata", "*.bpt"))
	if err != nil || len(paths) == 0 {
		t.Skipf("no corpus traces: %v", err)
	}
	dir := t.TempDir()
	for _, p := range paths {
		tr, err := ReadFile(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		out := filepath.Join(dir, filepath.Base(p)+"2")
		if err := WriteFile2(out, tr, 0); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		back, err := ReadFile(out)
		if err != nil {
			t.Fatalf("%s: %v", out, err)
		}
		if back.Digest() != tr.Digest() {
			t.Fatalf("%s: transcode changed content digest", p)
		}
		st1, _ := os.Stat(p)
		st2, _ := os.Stat(out)
		if st1 != nil && st2 != nil && st2.Size() >= st1.Size() {
			t.Logf("%s: BPT2 %d bytes vs BPT1 %d (corpus traces are tiny; header+index overhead can win)", p, st2.Size(), st1.Size())
		}
	}
}
