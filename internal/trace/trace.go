// Package trace defines the branch-trace representation driving the
// simulator, a compact binary on-disk format, and the trace
// characterization statistics behind the paper's Tables 1 and 2
// (static/dynamic branch counts, hot-set coverage, bias profile).
//
// The paper drove its simulations with pixie-derived SPECint92 traces
// and hardware-monitored IBS-Ultrix traces of MIPS R2000 workstations.
// This package is the equivalent substrate: traces are sequences of
// conditional-branch records (program counter, target, outcome), and
// every simulator component consumes them through the same interfaces
// whether they come from the synthetic workload generator or a file.
package trace

import "math/bits"

// Branch is one dynamic conditional-branch instance.
type Branch struct {
	// PC is the branch instruction's address. Word-aligned, as on MIPS.
	PC uint64
	// Target is the taken-path target address. Nair's path-history
	// scheme consumes these bits.
	Target uint64
	// Taken is the resolved direction.
	Taken bool
}

// Trace is an in-memory branch trace with workload metadata.
type Trace struct {
	// Name identifies the workload (e.g. "espresso", "mpeg_play").
	Name string
	// Instructions is the total dynamic instruction count the branch
	// stream represents. Conditional branches are 10-25% of dynamic
	// instructions in the paper's workloads (Table 1), so the
	// generator records the implied total here as metadata.
	Instructions uint64
	// Branches is the dynamic branch sequence.
	Branches []Branch
}

// Source yields branches one at a time; it is how the simulator
// consumes traces without requiring them to be memory-resident.
type Source interface {
	// Next returns the next branch. ok is false when the source is
	// exhausted.
	Next() (b Branch, ok bool)
}

// BatchSource is a Source that can also yield branches in chunks,
// the granularity the simulator's fast path consumes. NextBatch
// returns the next chunk of at most len(buf) branches; the returned
// slice is only valid until the following NextBatch call. In-memory
// sources return direct windows into the trace (buf is untouched);
// streaming sources fill buf. An empty result means exhaustion.
// Mixing Next and NextBatch calls is allowed; both advance the same
// cursor.
type BatchSource interface {
	Source
	NextBatch(buf []Branch) []Branch
}

// AsBatch returns src itself when it already supports batch
// iteration, or wraps it in an adapter that gathers chunks through
// Next. The adapter lets the batched simulator consume arbitrary
// third-party sources.
func AsBatch(src Source) BatchSource {
	if bs, ok := src.(BatchSource); ok {
		return bs
	}
	return &batchAdapter{src: src}
}

// batchAdapter lifts a plain Source to BatchSource by buffering.
type batchAdapter struct {
	src Source
}

func (a *batchAdapter) Next() (Branch, bool) { return a.src.Next() }

func (a *batchAdapter) NextBatch(buf []Branch) []Branch {
	n := 0
	for n < len(buf) {
		b, ok := a.src.Next()
		if !ok {
			break
		}
		buf[n] = b
		n++
	}
	return buf[:n]
}

// sliceSource adapts an in-memory trace to Source.
type sliceSource struct {
	branches []Branch
	pos      int
}

// NewSource returns a Source over the trace's branches. The returned
// source is also a BatchSource whose batches are zero-copy windows
// into the trace.
func (t *Trace) NewSource() Source {
	return &sliceSource{branches: t.Branches}
}

func (s *sliceSource) Next() (Branch, bool) {
	if s.pos >= len(s.branches) {
		return Branch{}, false
	}
	b := s.branches[s.pos]
	s.pos++
	return b, true
}

// NextBatch returns a direct window of at most len(buf) branches.
func (s *sliceSource) NextBatch(buf []Branch) []Branch {
	n := len(s.branches) - s.pos
	if n <= 0 || len(buf) == 0 {
		return nil
	}
	if n > len(buf) {
		n = len(buf)
	}
	w := s.branches[s.pos : s.pos+n]
	s.pos += n
	return w
}

// Len returns the dynamic branch count.
func (t *Trace) Len() int { return len(t.Branches) }

// Append adds a branch to the trace.
func (t *Trace) Append(b Branch) { t.Branches = append(t.Branches, b) }

// Slice returns a shallow sub-trace covering branches [lo, hi),
// sharing the underlying storage. Metadata is scaled proportionally.
func (t *Trace) Slice(lo, hi int) *Trace {
	sub := &Trace{Name: t.Name, Branches: t.Branches[lo:hi]}
	if t.Len() > 0 {
		// Scale through a 128-bit product: Instructions * (hi-lo) can
		// exceed 64 bits for realistic (multi-billion-instruction)
		// traces. The quotient fits because hi-lo <= Len.
		phi, plo := bits.Mul64(t.Instructions, uint64(hi-lo))
		sub.Instructions, _ = bits.Div64(phi, plo, uint64(t.Len()))
	}
	return sub
}
