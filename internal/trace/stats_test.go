package trace

import (
	"math"
	"testing"
)

func statsFixture() *Trace {
	tr := &Trace{Name: "fixture", Instructions: 10000}
	// Branch A at 0x100: 60 instances, 54 taken (bias 0.9).
	for i := 0; i < 60; i++ {
		tr.Append(Branch{PC: 0x100, Target: 0x80, Taken: i < 54})
	}
	// Branch B at 0x200: 30 instances, 3 taken (bias 0.9 not-taken).
	for i := 0; i < 30; i++ {
		tr.Append(Branch{PC: 0x200, Target: 0x300, Taken: i < 3})
	}
	// Branch C at 0x300: 10 instances, 5 taken (bias 0.5).
	for i := 0; i < 10; i++ {
		tr.Append(Branch{PC: 0x300, Target: 0x400, Taken: i%2 == 0})
	}
	return tr
}

func TestAnalyzeCounts(t *testing.T) {
	s := AnalyzeTrace(statsFixture())
	if s.Dynamic != 100 {
		t.Fatalf("Dynamic = %d, want 100", s.Dynamic)
	}
	if s.Static != 3 {
		t.Fatalf("Static = %d, want 3", s.Static)
	}
	if s.TakenCount != 54+3+5 {
		t.Fatalf("TakenCount = %d, want 62", s.TakenCount)
	}
	if got := s.TakenRate(); math.Abs(got-0.62) > 1e-12 {
		t.Fatalf("TakenRate = %g, want 0.62", got)
	}
	if got := s.BranchFraction(); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("BranchFraction = %g, want 0.01", got)
	}
}

func TestProfilesSortedByCount(t *testing.T) {
	s := AnalyzeTrace(statsFixture())
	ps := s.Profiles()
	if len(ps) != 3 {
		t.Fatalf("%d profiles, want 3", len(ps))
	}
	if ps[0].PC != 0x100 || ps[1].PC != 0x200 || ps[2].PC != 0x300 {
		t.Fatalf("unexpected order: %#x %#x %#x", ps[0].PC, ps[1].PC, ps[2].PC)
	}
	if ps[0].Count != 60 || ps[0].Taken != 54 {
		t.Fatalf("profile A = %+v", ps[0])
	}
}

func TestBias(t *testing.T) {
	cases := []struct {
		p    BranchProfile
		want float64
	}{
		{BranchProfile{Count: 10, Taken: 9}, 0.9},
		{BranchProfile{Count: 10, Taken: 1}, 0.9},
		{BranchProfile{Count: 10, Taken: 5}, 0.5},
		{BranchProfile{Count: 0, Taken: 0}, 0},
		{BranchProfile{Count: 4, Taken: 4}, 1},
	}
	for _, c := range cases {
		if got := c.p.Bias(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Bias(%+v) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestStaticFor(t *testing.T) {
	s := AnalyzeTrace(statsFixture())
	// A alone covers 60%.
	if got := s.StaticFor(0.5); got != 1 {
		t.Errorf("StaticFor(0.5) = %d, want 1", got)
	}
	// A+B cover 90%.
	if got := s.StaticFor(0.9); got != 2 {
		t.Errorf("StaticFor(0.9) = %d, want 2", got)
	}
	if got := s.StaticFor(1.0); got != 3 {
		t.Errorf("StaticFor(1.0) = %d, want 3", got)
	}
}

func TestCoverageBuckets(t *testing.T) {
	s := AnalyzeTrace(statsFixture())
	b := s.CoverageBuckets([]float64{0.50, 0.40, 0.09, 0.01})
	sum := 0
	for _, n := range b {
		sum += n
	}
	if sum != s.Static {
		t.Fatalf("buckets %v do not partition %d static branches", b, s.Static)
	}
	if b[0] != 1 {
		t.Errorf("first-50%% bucket = %d, want 1 (branch A covers 60%%)", b[0])
	}
}

func TestHighlyBiasedFraction(t *testing.T) {
	s := AnalyzeTrace(statsFixture())
	// A (bias .9, 60 inst) and B (bias .9, 30 inst) qualify at 0.9;
	// C (bias .5, 10 inst) does not.
	if got := s.HighlyBiasedFraction(0.9); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("HighlyBiasedFraction(0.9) = %g, want 0.9", got)
	}
	if got := s.HighlyBiasedFraction(0.95); got != 0 {
		t.Errorf("HighlyBiasedFraction(0.95) = %g, want 0", got)
	}
	if got := s.HighlyBiasedFraction(0.0); math.Abs(got-1) > 1e-12 {
		t.Errorf("HighlyBiasedFraction(0) = %g, want 1", got)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	s := AnalyzeTrace(&Trace{Name: "empty"})
	if s.Dynamic != 0 || s.Static != 0 {
		t.Fatal("empty trace produced nonzero counts")
	}
	if s.TakenRate() != 0 || s.BranchFraction() != 0 || s.HighlyBiasedFraction(0.5) != 0 {
		t.Fatal("empty trace rates should be 0")
	}
	if s.StaticFor(0.9) != 0 {
		t.Fatal("empty trace StaticFor should be 0")
	}
}

func TestAnalyzeDeterministicTieBreak(t *testing.T) {
	// Two branches with equal counts must sort by PC for reproducible
	// output.
	tr := &Trace{Name: "tie"}
	tr.Append(Branch{PC: 0x200, Taken: true})
	tr.Append(Branch{PC: 0x100, Taken: true})
	s := AnalyzeTrace(tr)
	ps := s.Profiles()
	if ps[0].PC != 0x100 || ps[1].PC != 0x200 {
		t.Fatalf("tie-break not by PC: %#x, %#x", ps[0].PC, ps[1].PC)
	}
}
