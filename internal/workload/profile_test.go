package workload

import "testing"

func TestProfilesMatchPaperTable1(t *testing.T) {
	// Counts straight from the paper's Table 1.
	want := []struct {
		name    string
		suite   Suite
		static  int
		hot90   int
		dynamic uint64
	}{
		{"compress", SPECint92, 236, 13, 11_739_532},
		{"eqntott", SPECint92, 494, 5, 342_595_193},
		{"espresso", SPECint92, 1764, 110, 76_466_469},
		{"gcc", SPECint92, 9531, 2020, 21_579_307},
		{"xlisp", SPECint92, 489, 48, 147_425_333},
		{"sc", SPECint92, 1269, 157, 150_381_340},
		{"groff", IBSUltrix, 6333, 459, 11_901_481},
		{"gs", IBSUltrix, 12852, 1160, 16_308_247},
		{"mpeg_play", IBSUltrix, 5598, 532, 9_566_290},
		{"nroff", IBSUltrix, 5249, 228, 22_574_884},
		{"real_gcc", IBSUltrix, 17361, 3214, 14_309_667},
		{"sdet", IBSUltrix, 5310, 506, 5_514_439},
		{"verilog", IBSUltrix, 4636, 650, 6_212_381},
		{"video_play", IBSUltrix, 4606, 757, 5_759_231},
	}
	ps := Profiles()
	if len(ps) != len(want) {
		t.Fatalf("%d profiles, want %d", len(ps), len(want))
	}
	for i, w := range want {
		p := ps[i]
		if p.Name != w.name || p.Suite != w.suite {
			t.Errorf("profile %d: %s/%s, want %s/%s", i, p.Name, p.Suite, w.name, w.suite)
		}
		if p.Static != w.static {
			t.Errorf("%s: Static=%d, want %d", w.name, p.Static, w.static)
		}
		if p.Hot90 != w.hot90 {
			t.Errorf("%s: Hot90=%d, want %d", w.name, p.Hot90, w.hot90)
		}
		if p.DynamicBranches != w.dynamic {
			t.Errorf("%s: DynamicBranches=%d, want %d", w.name, p.DynamicBranches, w.dynamic)
		}
	}
}

func TestProfilesMatchPaperTable2(t *testing.T) {
	// The paper's Table 2 gives hot-set band sizes for three
	// benchmarks. Note the paper's Tables 1 and 2 disagree slightly
	// (espresso: 12+93=105 branches at 90% in Table 2 vs 110 in
	// Table 1); DeriveBuckets anchors N50 and N50+N40 to Table 1's
	// Hot50/Hot90 and N50+N40+N9 to Table 2's 99% point, so the
	// expected band sizes below differ from Table 2 by that gap.
	cases := []struct {
		name         string
		n50, n40, n9 int
	}{
		{"espresso", 12, 110 - 12, (12 + 93 + 296) - 110},
		{"mpeg_play", 64, 532 - 64, (64 + 466 + 1372) - 532},
		{"real_gcc", 327, 3214 - 327, (327 + 2877 + 6398) - 3214},
	}
	for _, c := range cases {
		p, ok := ProfileByName(c.name)
		if !ok {
			t.Fatalf("missing profile %s", c.name)
		}
		b := DeriveBuckets(p)
		if b.N50 != c.n50 {
			t.Errorf("%s: N50=%d, want %d", c.name, b.N50, c.n50)
		}
		if b.N40 != c.n40 {
			t.Errorf("%s: N40=%d, want %d", c.name, b.N40, c.n40)
		}
		if b.N9 != c.n9 {
			t.Errorf("%s: N9=%d, want %d", c.name, b.N9, c.n9)
		}
		if b.Total() != p.Static {
			t.Errorf("%s: buckets total %d, want Static=%d", c.name, b.Total(), p.Static)
		}
	}
}

func TestDeriveBucketsPartition(t *testing.T) {
	for _, p := range Profiles() {
		b := DeriveBuckets(p)
		if b.Total() != p.Static {
			t.Errorf("%s: bucket total %d != static %d", p.Name, b.Total(), p.Static)
		}
		if b.N50 != p.Hot50 {
			t.Errorf("%s: N50 %d != Hot50 %d", p.Name, b.N50, p.Hot50)
		}
		if b.N50+b.N40 != p.Hot90 {
			t.Errorf("%s: N50+N40 %d != Hot90 %d", p.Name, b.N50+b.N40, p.Hot90)
		}
		for _, n := range []int{b.N50, b.N40, b.N9, b.N1} {
			if n < 0 {
				t.Errorf("%s: negative bucket in %+v", p.Name, b)
			}
		}
	}
}

func TestProfileByName(t *testing.T) {
	if _, ok := ProfileByName("espresso"); !ok {
		t.Error("espresso not found")
	}
	if _, ok := ProfileByName("nonesuch"); ok {
		t.Error("nonexistent profile found")
	}
}

func TestProfileNamesOrder(t *testing.T) {
	names := ProfileNames()
	if len(names) != 14 {
		t.Fatalf("%d names, want 14", len(names))
	}
	if names[0] != "compress" || names[13] != "video_play" {
		t.Errorf("order wrong: first=%s last=%s", names[0], names[13])
	}
}

func TestFocusProfiles(t *testing.T) {
	fps := FocusProfiles()
	if len(fps) != 3 {
		t.Fatalf("%d focus profiles, want 3", len(fps))
	}
	want := []string{"espresso", "mpeg_play", "real_gcc"}
	for i, p := range fps {
		if p.Name != want[i] {
			t.Errorf("focus[%d] = %s, want %s", i, p.Name, want[i])
		}
	}
}

func TestProfilesReturnsCopy(t *testing.T) {
	a := Profiles()
	a[0].Static = 1
	b := Profiles()
	if b[0].Static == 1 {
		t.Error("Profiles exposes internal state")
	}
}

func TestBehaviorFractionsSane(t *testing.T) {
	for _, p := range Profiles() {
		sum := p.LoopFrac + p.PatternFrac + p.CorrFrac
		if sum <= 0 || sum >= 1 {
			t.Errorf("%s: behavior fractions sum to %g", p.Name, sum)
		}
		if p.HighBiasFrac <= 0 || p.HighBiasFrac > 1 {
			t.Errorf("%s: HighBiasFrac %g", p.Name, p.HighBiasFrac)
		}
		if p.PhasedFrac < 0 || p.PhasedFrac > 1 {
			t.Errorf("%s: PhasedFrac %g", p.Name, p.PhasedFrac)
		}
		if p.TripMean < 2 {
			t.Errorf("%s: TripMean %g", p.Name, p.TripMean)
		}
		if p.BranchFrac <= 0 || p.BranchFrac > 0.5 {
			t.Errorf("%s: BranchFrac %g", p.Name, p.BranchFrac)
		}
	}
}

func TestIBSProfilesHaveInterrupts(t *testing.T) {
	// The IBS traces include kernel and X-server activity; SPEC
	// traces are user-level only (paper §2).
	for _, p := range Profiles() {
		hasInt := p.InterruptEvery > 0
		if p.Suite == IBSUltrix && !hasInt {
			t.Errorf("%s: IBS profile without interrupts", p.Name)
		}
		if p.Suite == SPECint92 && hasInt {
			t.Errorf("%s: SPEC profile with interrupts", p.Name)
		}
	}
}

func TestProfileValidate(t *testing.T) {
	// All built-in profiles validate.
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("built-in %s: %v", p.Name, err)
		}
	}
	good := Profile{
		Name: "custom", Static: 100, Hot50: 5, Hot90: 30,
		BranchFrac: 0.15, LoopFrac: 0.2, PatternFrac: 0.1, CorrFrac: 0.2,
		HighBiasFrac: 0.8, PhasedFrac: 0.5, TripMean: 10,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good custom profile rejected: %v", err)
	}
	bad := []func(Profile) Profile{
		func(p Profile) Profile { p.Name = ""; return p },
		func(p Profile) Profile { p.Static = 0; return p },
		func(p Profile) Profile { p.Hot50 = 0; return p },
		func(p Profile) Profile { p.Hot90 = 2; return p },
		func(p Profile) Profile { p.Hot90 = 200; return p },
		func(p Profile) Profile { p.Hot99 = 10; return p },
		func(p Profile) Profile { p.LoopFrac = -0.1; return p },
		func(p Profile) Profile { p.LoopFrac = 0.9; return p },
		func(p Profile) Profile { p.HighBiasFrac = 1.5; return p },
		func(p Profile) Profile { p.PhasedFrac = -1; return p },
		func(p Profile) Profile { p.TripMean = 1; return p },
		func(p Profile) Profile { p.BranchFrac = 2; return p },
		func(p Profile) Profile { p.InterruptEvery = -5; return p },
	}
	for i, mutate := range bad {
		if err := mutate(good).Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}
