package workload

import (
	"math"
	"sort"

	"bpred/internal/rng"
	"bpred/internal/trace"
)

// siteState is the per-site mutable execution state, kept outside
// Program so a built program can be emitted from concurrently.
type siteState struct {
	patPos      int
	lastOutcome bool
	// minority is true while a biased site is inside a burst of its
	// minority outcome.
	minority bool
	// skipping is true while a nested site is inside a burst of
	// not-executing.
	skipping bool
}

// stickiness parameters: bursts of minority outcomes (and of skipped
// executions) persist with these probabilities, giving branches the
// phase behavior real data-dependent branches exhibit. Marginal rates
// are preserved by scaling the entry probability (see enterProb).
const (
	stayMinority = 0.98
	staySkipping = 0.95
)

// enterProb returns the per-step probability of entering a sticky
// minority state so that its stationary frequency equals pMinor given
// the stay probability.
func enterProb(pMinor, stay float64) float64 {
	if pMinor <= 0 {
		return 0
	}
	if pMinor >= 1 {
		return 1
	}
	return pMinor * (1 - stay) / (1 - pMinor)
}

// Emitter generates a branch stream from a Program. It implements
// trace.Source, so simulations can consume workloads without
// materializing them; Emit produces an in-memory trace.
type Emitter struct {
	prog  *Program
	g     *rng.Xoshiro256
	state [][]siteState

	// pending buffers branches emitted by the current activation.
	pending []trace.Branch
	ppos    int

	lastSeg       int
	haveLast      bool
	emitted       uint64
	nextInterrupt uint64
	phase         int
	nextPhase     uint64
	interruptLeft int
}

// NewEmitter returns an emitter producing the program's branch stream
// for the given seed. Distinct seeds yield distinct (but
// statistically identical) streams.
func (p *Program) NewEmitter(seed uint64) *Emitter {
	e := &Emitter{
		prog:  p,
		g:     rng.NewXoshiro256(rng.Mix64(seed) ^ 0x243F6A8885A308D3),
		state: make([][]siteState, len(p.segments)),
	}
	for i := range p.segments {
		e.state[i] = make([]siteState, len(p.segments[i].sites))
	}
	e.scheduleInterrupt()
	e.schedulePhaseChange()
	return e
}

func (e *Emitter) schedulePhaseChange() {
	if e.prog.phaseCount <= 1 {
		e.nextPhase = math.MaxUint64
		return
	}
	gap := uint64(e.g.ExpFloat64() * float64(e.prog.phaseLen))
	if gap == 0 {
		gap = 1
	}
	e.nextPhase = e.emitted + gap
}

func (e *Emitter) scheduleInterrupt() {
	mean := e.prog.profile.InterruptEvery
	if mean <= 0 {
		e.nextInterrupt = math.MaxUint64
		return
	}
	gap := uint64(e.g.ExpFloat64() * float64(mean))
	if gap == 0 {
		gap = 1
	}
	e.nextInterrupt = e.emitted + gap
}

// Next returns the next branch in the stream. The stream is
// unbounded; ok is always true.
func (e *Emitter) Next() (trace.Branch, bool) {
	for e.ppos >= len(e.pending) {
		e.pending = e.pending[:0]
		e.ppos = 0
		e.runActivation()
	}
	b := e.pending[e.ppos]
	e.ppos++
	e.emitted++
	return b, true
}

// runActivation executes one segment activation (or an interrupt
// burst) and buffers its branches.
func (e *Emitter) runActivation() {
	var si int
	switch {
	case e.interruptLeft > 0:
		// Inside an interrupt burst: keep running service segments.
		si = e.prog.service[e.g.Intn(len(e.prog.service))]
		e.interruptLeft--
	case e.emitted >= e.nextInterrupt:
		// Interrupt: a burst of service-set segments runs — modeling
		// the OS and X-server activity interleaved with the
		// application in the IBS traces, which both breaks up branch
		// history and widens the instantaneous branch working set.
		si = e.prog.service[e.g.Intn(len(e.prog.service))]
		e.interruptLeft = 1 + e.g.Intn(4)
		e.scheduleInterrupt()
	case e.haveLast && e.g.Bool(e.prog.persist):
		// Phase locality: re-run the previous segment.
		si = e.lastSeg
	default:
		si = e.pickSegment()
	}
	e.lastSeg, e.haveLast = si, true

	seg := &e.prog.segments[si]
	st := e.state[si]
	n := len(seg.sites)
	if seg.loop {
		body := n - 1
		trip := seg.trip
		if seg.tripJitter > 0 {
			trip += e.g.Intn(2*seg.tripJitter+1) - seg.tripJitter
			if trip < 1 {
				trip = 1
			}
		}
		for it := 0; it < trip; it++ {
			for j := 0; j < body; j++ {
				e.maybeEmit(seg, st, j)
			}
			e.emitLoop(seg, st, it < trip-1)
		}
		return
	}
	for j := 0; j < n; j++ {
		e.maybeEmit(seg, st, j)
	}
}

// pickSegment samples the current phase's activation distribution,
// rotating to the next phase when its span expires.
func (e *Emitter) pickSegment() int {
	if e.emitted >= e.nextPhase {
		e.phase = (e.phase + 1) % e.prog.phaseCount
		e.schedulePhaseChange()
	}
	cum := e.prog.cum
	if e.prog.phaseCount > 1 {
		cum = e.prog.cumPhase[e.phase]
	}
	u := e.g.Float64()
	return sort.SearchFloat64s(cum, u)
}

func (e *Emitter) maybeEmit(seg *segment, st []siteState, j int) {
	s := &seg.sites[j]
	if s.execProb < 1 {
		// Sticky skipping: once a nested site stops executing it
		// tends to stay skipped for a few passes (its guarding
		// predicate has phases), preserving the marginal rate.
		if st[j].skipping {
			if e.g.Bool(staySkipping) {
				return
			}
			st[j].skipping = false
		} else if e.g.Bool(enterProb(1-s.execProb, staySkipping)) {
			st[j].skipping = true
			return
		}
	}
	e.emitSite(seg, st, j)
}

func (e *Emitter) emitLoop(seg *segment, st []siteState, taken bool) {
	j := len(seg.sites) - 1
	s := &seg.sites[j]
	st[j].lastOutcome = taken
	e.pending = append(e.pending, trace.Branch{PC: s.pc, Target: s.target, Taken: taken})
}

func (e *Emitter) emitSite(seg *segment, st []siteState, j int) {
	s := &seg.sites[j]
	var taken bool
	switch s.kind {
	case kindBiased:
		if !s.phased {
			taken = e.g.Bool(s.biasP)
			break
		}
		// Phased bias: the minority outcome arrives in long bursts
		// rather than as independent flips, so history patterns stay
		// locally stable — the phase behavior of real data-dependent
		// branches.
		major := s.biasP >= 0.5
		pMinor := s.biasP
		if major {
			pMinor = 1 - s.biasP
		}
		if st[j].minority {
			if !e.g.Bool(stayMinority) {
				st[j].minority = false
			}
		} else if e.g.Bool(enterProb(pMinor, stayMinority)) {
			st[j].minority = true
		}
		taken = major == !st[j].minority
	case kindPattern:
		taken = (s.pattern>>uint(st[j].patPos))&1 == 1
		st[j].patPos++
		if st[j].patPos >= s.patLen {
			st[j].patPos = 0
		}
	case kindCorrelated:
		src := st[s.corrSrc].lastOutcome
		taken = src != s.corrNeg
		if e.g.Bool(s.corrNoise) {
			taken = !taken
		}
	default:
		// Loop sites are emitted by emitLoop; reaching here is a bug.
		panic("workload: emitSite on loop site")
	}
	st[j].lastOutcome = taken
	e.pending = append(e.pending, trace.Branch{PC: s.pc, Target: s.target, Taken: taken})
}

// Emit materializes a trace of exactly n branches.
func (p *Program) Emit(n int, seed uint64) *trace.Trace {
	e := p.NewEmitter(seed)
	tr := &trace.Trace{
		Name:     p.profile.Name,
		Branches: make([]trace.Branch, 0, n),
	}
	for tr.Len() < n {
		b, _ := e.Next()
		tr.Append(b)
	}
	if p.profile.BranchFrac > 0 {
		tr.Instructions = uint64(float64(n) / p.profile.BranchFrac)
	}
	return tr
}

// Generate builds the profile's program and emits n branches in one
// call. Equivalent to Build(p, seed).Emit(n, seed+1).
func Generate(p Profile, seed uint64, n int) *trace.Trace {
	return Build(p, seed).Emit(n, seed+1)
}

var _ trace.Source = (*Emitter)(nil)
