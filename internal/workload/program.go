package workload

import (
	"fmt"
	"math"

	"bpred/internal/rng"
	"bpred/internal/stats"
)

// siteKind classifies a static branch site's behavior model.
type siteKind uint8

const (
	kindBiased siteKind = iota
	kindLoop
	kindPattern
	kindCorrelated
)

func (k siteKind) String() string {
	switch k {
	case kindBiased:
		return "biased"
	case kindLoop:
		return "loop"
	case kindPattern:
		return "pattern"
	case kindCorrelated:
		return "correlated"
	default:
		return fmt.Sprintf("siteKind(%d)", uint8(k))
	}
}

// site is one static conditional branch.
type site struct {
	pc     uint64
	target uint64
	kind   siteKind

	// weight is the site's target fraction of dynamic instances.
	weight float64
	// execProb is the probability the site executes on a given pass
	// through its segment: 1 for straight-line branches, < 1 for
	// branches nested under other conditionals.
	execProb float64

	// kindBiased: P(taken). Phased sites emit their minority outcome
	// in long bursts (low pattern entropy); iid sites flip
	// independently per instance (they set the bimodal floor).
	biasP  float64
	phased bool

	// kindPattern: repeating outcome pattern of period patLen.
	pattern uint64
	patLen  int

	// kindCorrelated: outcome follows (possibly negated) the last
	// outcome of an earlier site in the segment, with a small noise
	// flip probability.
	corrSrc   int
	corrNeg   bool
	corrNoise float64
}

// segment is a group of sites executed together in order, modeling a
// function or inner code region. A segment may be a loop: its body
// (all sites but the last) re-executes trip times, with the loop
// branch — the segment's final site — taken on all but the last
// iteration. Deterministic in-order execution is what gives global
// history patterns their information content, exactly as structured
// control flow does in real programs.
type segment struct {
	sites []site
	// loop reports whether the final site is a loop-exit branch.
	loop bool
	// trip is the mean loop iteration count (1 when loop is false).
	trip int
	// tripJitter is the half-width of the per-activation trip range:
	// each activation draws trip uniformly from [trip-j, trip+j].
	// Zero means a fixed, self-history-predictable trip; real loops
	// mostly have data-dependent trip counts, which is what keeps
	// per-address schemes from predicting loop exits perfectly.
	tripJitter int
	// act is the segment's activation weight: expected per-site
	// emission frequency divided by trip.
	act float64
}

// Program is the built static structure for one profile: segments of
// sites with addresses, weights, and behavior models. Build is pure;
// all mutable execution state lives in an Emitter.
type Program struct {
	profile  Profile
	segments []segment
	// cum is the cumulative segment-activation distribution.
	cum []float64
	// persist is the probability an activation repeats the previous
	// segment, modeling phase locality.
	persist float64
	// hotWeight is the weight of the rank-Hot90 site; sites at or
	// above it are "hot" for behavior assignment.
	hotWeight float64

	// Phase structure: real instruction streams run in phases — in
	// any window the active branch set is a fraction of the program,
	// while the whole trace covers all of it. Segments containing
	// 50%-set sites form an always-active core; every other segment
	// belongs to one of phaseCount rotating phases. cumPhase[p] is
	// the activation CDF over all segments with non-phase-p segments
	// given zero weight; phaseLen is the mean number of branches
	// between phase changes.
	phaseCount int
	phaseLen   int
	phaseOf    []int // segment -> phase, -1 for always-active core
	cumPhase   [][]float64

	// service lists the segments that interrupt bursts run: a fixed,
	// modest working set modeling the kernel and X-server paths the
	// IBS traces capture. The same few paths recur across interrupts
	// (they fit a 1024-entry history table but stress a 128-entry
	// one, like the paper's first-level miss curves).
	service []int
}

// Profile returns the profile the program was built from.
func (p *Program) Profile() Profile { return p.profile }

// Segments returns the segment count.
func (p *Program) Segments() int { return len(p.segments) }

// Sites returns the total static site count.
func (p *Program) Sites() int {
	n := 0
	for _, s := range p.segments {
		n += len(s.sites)
	}
	return n
}

// textBase is the MIPS user text segment base address.
const textBase uint64 = 0x0040_0000

// defaultPersist is the probability of re-running the previous
// segment; it produces the temporal locality real instruction streams
// exhibit (repeated calls to the same function, phase behavior).
const defaultPersist = 0.45

// Build constructs the static program for a profile. The same
// (profile, seed) always yields the same program.
func Build(p Profile, seed uint64) *Program {
	if p.Static <= 0 {
		panic(fmt.Sprintf("workload: profile %q has no static branches", p.Name))
	}
	if p.Hot50 <= 0 || p.Hot90 < p.Hot50 || p.Static < p.Hot90 {
		panic(fmt.Sprintf("workload: profile %q has inconsistent hot-set sizes", p.Name))
	}
	g := rng.NewXoshiro256(rng.Mix64(seed) ^ 0xB7E151628AED2A6A)

	weights := siteWeights(p)
	kinds := siteKinds(p, g)
	prog := &Program{profile: p, persist: defaultPersist}
	if p.Hot90 <= len(weights) {
		prog.hotWeight = weights[p.Hot90-1]
	}
	prog.buildSegments(weights, kinds, g)
	prog.assignBehaviors(g)
	prog.assignAddresses(g)
	prog.assignPhases(weights, g)
	prog.buildActivationCDF()
	return prog
}

// assignPhases partitions non-core segments into rotating phases. The
// phase count grows with program size, so small SPEC workloads run as
// a single phase while large IBS workloads cycle among several,
// shrinking the instantaneous branch working set the way real phased
// execution (parse/optimize/emit, decode/render/display) does.
func (prog *Program) assignPhases(weights []float64, g *rng.Xoshiro256) {
	p := prog.profile
	prog.phaseCount = p.Static / 700
	if prog.phaseCount < 1 {
		prog.phaseCount = 1
	}
	if prog.phaseCount > 10 {
		prog.phaseCount = 10
	}
	prog.phaseLen = 50_000
	prog.phaseOf = make([]int, len(prog.segments))
	coreWeight := 0.0
	if p.Hot50 >= 1 && p.Hot50 <= len(weights) {
		coreWeight = weights[p.Hot50-1]
	}
	for i := range prog.segments {
		seg := &prog.segments[i]
		prog.phaseOf[i] = g.Intn(prog.phaseCount)
		for _, s := range seg.sites {
			if s.weight >= coreWeight {
				prog.phaseOf[i] = -1 // always-active core
				break
			}
		}
	}
	if p.InterruptEvery > 0 {
		want := len(prog.segments) / 12
		if want > 40 {
			want = 40
		}
		if want < 1 {
			want = 1
		}
		// Kernel service paths are short straight-line code: exclude
		// loop segments so an interrupt burst cannot emit a long
		// iteration stream that would distort the frequency
		// calibration.
		for _, i := range g.Perm(len(prog.segments)) {
			if prog.segments[i].loop {
				continue
			}
			prog.service = append(prog.service, i)
			if len(prog.service) == want {
				break
			}
		}
	}
}

// siteWeights constructs per-rank target frequencies matching the
// profile's coverage buckets: 50% of mass over the first N50 ranks,
// 40% over the next N40, 9% over N9, 1% over the rest. Mass within a
// bucket follows a mild Zipf so hot sets have realistic internal skew.
func siteWeights(p Profile) []float64 {
	b := DeriveBuckets(p)
	w := make([]float64, 0, p.Static)
	appendBucket := func(n int, mass, exponent float64) {
		if n <= 0 {
			return
		}
		z := stats.NewZipf(n, exponent)
		for i := 0; i < n; i++ {
			w = append(w, mass*z.Prob(i))
		}
	}
	appendBucket(b.N50, 0.50, 0.6)
	appendBucket(b.N40, 0.40, 0.4)
	appendBucket(b.N9, 0.09, 0.3)
	appendBucket(b.N1, 0.01, 0.0)
	return w
}

// siteKinds assigns behavior models by rank. Hot sites (within the
// 90% set) receive the profile's loop/pattern/correlation mix; cold
// sites are overwhelmingly highly biased conditionals (error and
// bounds checks), with a sprinkling of loops.
func siteKinds(p Profile, g *rng.Xoshiro256) []siteKind {
	kinds := make([]siteKind, p.Static)
	for i := range kinds {
		hot := i < p.Hot90
		r := g.Float64()
		switch {
		case hot && r < p.LoopFrac:
			kinds[i] = kindLoop
		case hot && r < p.LoopFrac+p.PatternFrac:
			kinds[i] = kindPattern
		case hot && r < p.LoopFrac+p.PatternFrac+p.CorrFrac:
			kinds[i] = kindCorrelated
		case !hot && r < p.LoopFrac/2:
			kinds[i] = kindLoop
		default:
			kinds[i] = kindBiased
		}
	}
	return kinds
}

// buildSegments partitions ranks, in order, into segments of
// geometric-ish size (mean about 9 sites), so consecutive ranks —
// which have similar frequencies — share a segment the way branches
// of one hot function do. At most one loop site survives per segment
// and is moved to the segment's end as its backward loop branch;
// extra loop-kind sites demote to biased conditionals. A third of
// loop sites instead become *tight* loops — single-branch segments
// spinning with no body, like memcpy/strlen inner loops — which
// produce the all-taken global history patterns whose aliasing the
// paper classifies as mostly harmless.
func (prog *Program) buildSegments(weights []float64, kinds []siteKind, g *rng.Xoshiro256) {
	p := prog.profile
	i := 0
	for i < len(weights) {
		if kinds[i] == kindLoop && g.Bool(0.35) {
			trip := drawTrip(p.TripMean, g)
			if trip < 16 {
				trip = 16 + g.Intn(33) // tight loops spin long
			}
			seg := segment{
				sites: []site{{weight: weights[i], kind: kindLoop, execProb: 1}},
				loop:  true,
				trip:  trip,
				act:   weights[i] / float64(trip),
			}
			if g.Bool(0.85) {
				seg.tripJitter = 1 + trip/4
			}
			prog.segments = append(prog.segments, seg)
			i++
			continue
		}
		size := 4 + g.Intn(11) // 4..14, mean 9
		if i+size > len(weights) {
			size = len(weights) - i
		}
		seg := segment{sites: make([]site, size), trip: 1}
		mean := 0.0
		loopAt := -1
		for j := 0; j < size; j++ {
			k := kinds[i+j]
			if k == kindLoop {
				if loopAt < 0 && size > 1 {
					loopAt = j
				} else {
					k = kindBiased
				}
			}
			seg.sites[j] = site{weight: weights[i+j], kind: k, execProb: 1}
			mean += weights[i+j]
		}
		mean /= float64(size)
		if loopAt >= 0 {
			// The loop branch closes the segment.
			last := size - 1
			seg.sites[loopAt], seg.sites[last] = seg.sites[last], seg.sites[loopAt]
			seg.loop = true
			seg.trip = drawTrip(p.TripMean, g)
			if g.Bool(0.85) && seg.trip > 2 {
				seg.tripJitter = 1 + seg.trip/4
				if seg.tripJitter >= seg.trip {
					seg.tripJitter = seg.trip - 1
				}
			}
		}
		seg.act = mean / float64(seg.trip)
		prog.segments = append(prog.segments, seg)
		i += size
	}
}

// assignBehaviors fills in the kind-specific parameters, resolving
// correlation sources within each segment and assigning conditional
// nesting (execProb < 1) to a minority of sites.
func (prog *Program) assignBehaviors(g *rng.Xoshiro256) {
	p := prog.profile
	for si := range prog.segments {
		seg := &prog.segments[si]
		last := len(seg.sites) - 1
		for j := range seg.sites {
			s := &seg.sites[j]
			// About 15% of non-loop branches sit under another
			// conditional and execute only on some passes.
			if !(seg.loop && j == last) && g.Bool(0.15) {
				s.execProb = 0.7 + 0.3*g.Float64()
			}
			switch s.kind {
			case kindPattern:
				s.patLen = 3 + g.Intn(8) // 3..10
				s.pattern = nonConstantPattern(s.patLen, g)
			case kindCorrelated:
				src := correlationSource(seg.sites, j)
				if src < 0 {
					// No viable earlier source; degrade to a
					// medium-bias conditional.
					s.kind = kindBiased
					s.biasP = mediumBias(g)
					break
				}
				s.corrSrc = src
				s.corrNeg = g.Bool(0.5)
				s.corrNoise = 0.01 + 0.03*g.Float64()
			}
			if s.kind == kindBiased && s.biasP == 0 {
				s.biasP = drawBias(p, s.weight >= prog.hotWeight, g)
				s.phased = g.Bool(p.PhasedFrac)
			}
		}
	}
}

// drawTrip draws a loop trip count with the given mean: a mixture of
// short fixed loops (predictable with a few history bits) and longer
// ones (all-ones history producers).
func drawTrip(mean float64, g *rng.Xoshiro256) int {
	if g.Bool(0.3) {
		return 4 + g.Intn(7) // short: 4..10
	}
	t := int(math.Round(g.ExpFloat64() * mean))
	if t < 8 {
		t = 8
	}
	if t > 2048 {
		t = 2048
	}
	return t
}

// nonConstantPattern draws a period-n outcome pattern containing both
// taken and not-taken.
func nonConstantPattern(n int, g *rng.Xoshiro256) uint64 {
	for {
		v := g.Uint64() & ((1 << n) - 1)
		if v != 0 && v != (1<<n)-1 {
			return v
		}
	}
}

// correlationSource picks an earlier site in the segment (within a
// window of 6) to correlate with, preferring the nearest eligible
// one.
func correlationSource(sites []site, j int) int {
	lo := j - 6
	if lo < 0 {
		lo = 0
	}
	best := -1
	for k := lo; k < j; k++ {
		switch sites[k].kind {
		case kindPattern, kindCorrelated, kindBiased:
			best = k
		}
	}
	return best
}

// drawBias draws P(taken) for a plain conditional: strongly one-sided
// with probability HighBiasFrac, otherwise medium. The mix is
// deliberately bias-heavy — the paper stresses that most branch
// instances come from branches that are "almost always or almost
// never taken". Hot sites mix directions (58/42 toward taken), giving
// program points distinctive history signatures while keeping the
// taken-dominated runs that fill global histories with the all-ones
// loop pattern; cold sites favor taken 65/35, keeping whole-trace
// taken rates near the paper's.
func drawBias(p Profile, hot bool, g *rng.Xoshiro256) float64 {
	var bias float64
	if g.Bool(p.HighBiasFrac) {
		bias = 0.945 + 0.054*g.Float64() // 5.5% .. 0.1% noise
	} else {
		bias = mediumBias(g)
	}
	flip := 0.35
	if hot {
		flip = 0.42
	}
	if g.Bool(flip) {
		bias = 1 - bias
	}
	return bias
}

// mediumBias draws a moderately predictable bias in [0.85, 0.98].
func mediumBias(g *rng.Xoshiro256) float64 {
	return 0.85 + 0.13*g.Float64()
}

// assignAddresses lays segments out in a shuffled order across the
// text segment, with realistic spacing: branches a few words apart
// inside a segment, larger gaps between segments. Loop branches jump
// backward to their segment's start; conditional targets are short
// forward skips.
func (prog *Program) assignAddresses(g *rng.Xoshiro256) {
	order := g.Perm(len(prog.segments))
	pc := textBase
	for _, si := range order {
		seg := &prog.segments[si]
		pc += uint64(4 * (16 + g.Intn(49))) // inter-segment gap: 16..64 words
		start := pc
		for j := range seg.sites {
			pc += uint64(4 * (3 + g.Intn(10))) // 3..12 words between branches
			s := &seg.sites[j]
			s.pc = pc
			s.target = pc + uint64(4*(2+g.Intn(30)))
		}
		if seg.loop {
			seg.sites[len(seg.sites)-1].target = start
		}
	}
}

// buildActivationCDF prepares the cumulative distributions used to
// sample which segment runs next: the whole-program distribution plus
// one per phase (core segments active in every phase, phase segments
// only in their own, at phaseCount-times weight so overall frequencies
// are preserved across a full rotation).
func (prog *Program) buildActivationCDF() {
	prog.cum = cdfOf(prog.segments, func(int) float64 { return 1 })
	prog.cumPhase = make([][]float64, prog.phaseCount)
	for ph := 0; ph < prog.phaseCount; ph++ {
		prog.cumPhase[ph] = cdfOf(prog.segments, func(i int) float64 {
			switch prog.phaseOf[i] {
			case -1:
				return 1
			case ph:
				return float64(prog.phaseCount)
			default:
				return 0
			}
		})
	}
}

// cdfOf builds a normalized cumulative distribution over segment
// activation weights scaled by the given factor.
func cdfOf(segs []segment, scale func(i int) float64) []float64 {
	cum := make([]float64, len(segs))
	acc := 0.0
	for i, seg := range segs {
		acc += seg.act * scale(i)
		cum[i] = acc
	}
	if acc == 0 {
		// Degenerate phase with no mass: fall back to uniform.
		for i := range cum {
			cum[i] = float64(i+1) / float64(len(cum))
		}
		return cum
	}
	for i := range cum {
		cum[i] /= acc
	}
	cum[len(cum)-1] = 1
	return cum
}
