package workload

import (
	"testing"

	"bpred/internal/trace"
)

// constSource yields an endless stream of one branch.
type constSource struct{ b trace.Branch }

func (c constSource) Next() (trace.Branch, bool) { return c.b, true }

// finiteSource yields n copies of one branch.
type finiteSource struct {
	b trace.Branch
	n int
}

func (f *finiteSource) Next() (trace.Branch, bool) {
	if f.n == 0 {
		return trace.Branch{}, false
	}
	f.n--
	return f.b, true
}

func TestInterleaveRoundRobinShares(t *testing.T) {
	a := constSource{trace.Branch{PC: 0x100, Taken: true}}
	b := constSource{trace.Branch{PC: 0x200, Taken: false}}
	tr := Interleave(50, 10_000, 3, a, b)
	if tr.Len() != 10_000 {
		t.Fatalf("length %d", tr.Len())
	}
	counts := map[uint64]int{}
	for _, br := range tr.Branches {
		counts[br.PC]++
	}
	for pc, n := range counts {
		if n < 3500 || n > 6500 {
			t.Errorf("pc %#x got %d/10000 branches; shares should be near-equal", pc, n)
		}
	}
}

func TestInterleaveQuantaAlternate(t *testing.T) {
	a := constSource{trace.Branch{PC: 0x100}}
	b := constSource{trace.Branch{PC: 0x200}}
	tr := Interleave(20, 5_000, 1, a, b)
	switches := 0
	for i := 1; i < tr.Len(); i++ {
		if tr.Branches[i].PC != tr.Branches[i-1].PC {
			switches++
		}
	}
	// Mean quantum 20 over 5000 branches: expect on the order of 250
	// switches, certainly not 0 and not per-branch alternation.
	if switches < 50 || switches > 1500 {
		t.Errorf("%d context switches; quanta look wrong", switches)
	}
}

func TestInterleaveStopsAtExhaustion(t *testing.T) {
	a := &finiteSource{trace.Branch{PC: 0x100}, 100}
	b := constSource{trace.Branch{PC: 0x200}}
	tr := Interleave(10, 1_000_000, 2, a, b)
	if tr.Len() >= 1_000_000 {
		t.Fatal("did not stop at source exhaustion")
	}
	if tr.Len() < 100 {
		t.Fatalf("stopped too early: %d", tr.Len())
	}
}

func TestInterleaveDeterministic(t *testing.T) {
	mk := func() *trace.Trace {
		p, _ := ProfileByName("eqntott")
		em := Build(p, 1).NewEmitter(2)
		return Interleave(30, 5000, 9, em, constSource{trace.Branch{PC: 0x9000}})
	}
	a, b := mk(), mk()
	for i := range a.Branches {
		if a.Branches[i] != b.Branches[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}

func TestInterleavePanics(t *testing.T) {
	src := constSource{}
	for _, f := range []func(){
		func() { Interleave(0, 10, 1, src) },
		func() { Interleave(10, 0, 1, src) },
		func() { Interleave(10, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad Interleave args did not panic")
				}
			}()
			f()
		}()
	}
}

func TestInterleaveProfiles(t *testing.T) {
	tr, err := InterleaveProfiles([]string{"eqntott", "compress"}, 100, 60_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 60_000 {
		t.Fatalf("length %d", tr.Len())
	}
	if tr.Name != "interleave(eqntott+compress)" {
		t.Errorf("name %q", tr.Name)
	}
	// Address spaces must not overlap: slot 0 PCs < 1<<28, slot 1 in
	// [1<<28, 2<<28).
	var lo, hi int
	for _, b := range tr.Branches {
		switch b.PC >> 28 {
		case 0:
			lo++
		case 1:
			hi++
		default:
			t.Fatalf("pc %#x outside either address slot", b.PC)
		}
	}
	if lo == 0 || hi == 0 {
		t.Fatalf("one program missing: %d/%d", lo, hi)
	}
}

func TestInterleaveProfilesErrors(t *testing.T) {
	if _, err := InterleaveProfiles([]string{"nope"}, 100, 1000, 1); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := InterleaveProfiles([]string{"eqntott"}, 100, 0, 1); err == nil {
		t.Error("zero length accepted")
	}
}

// The effect the utility exists to show: interleaving two programs
// raises the misprediction rate of a small shared predictor above the
// weighted average of the programs run alone (history pollution and
// working-set widening).
func TestInterleaveHurtsSharedPredictor(t *testing.T) {
	if testing.Short() {
		t.Skip("needs moderate traces")
	}
	quantum, n := 150, 300_000
	mixed, err := InterleaveProfiles([]string{"espresso", "xlisp"}, quantum, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	soloA := Generate(mustProfile(t, "espresso"), 3, n/2)
	soloB := Generate(mustProfile(t, "xlisp"), 4, n/2)

	rate := func(tr *trace.Trace) float64 {
		// Small GAg: maximally history-sensitive.
		wrong, total := 0, 0
		p := newTestPredictor()
		src := tr.NewSource()
		for {
			b, ok := src.Next()
			if !ok {
				break
			}
			if p.predict(b) != b.Taken {
				wrong++
			}
			p.update(b)
			total++
		}
		return float64(wrong) / float64(total)
	}
	mixedRate := rate(mixed)
	soloRate := (rate(soloA) + rate(soloB)) / 2
	if mixedRate <= soloRate {
		t.Errorf("interleaving did not hurt: mixed %.3f vs solo avg %.3f", mixedRate, soloRate)
	}
}

func mustProfile(t *testing.T, name string) Profile {
	t.Helper()
	p, ok := ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	return p
}

// newTestPredictor builds a tiny gshare-like predictor inline to avoid
// an import cycle (workload cannot import core).
type testPredictor struct {
	hist  uint64
	table [1 << 10]uint8
}

func newTestPredictor() *testPredictor {
	p := &testPredictor{}
	for i := range p.table {
		p.table[i] = 2
	}
	return p
}

func (p *testPredictor) idx(b trace.Branch) int {
	return int((p.hist ^ (b.PC >> 2)) & 1023)
}

func (p *testPredictor) predict(b trace.Branch) bool {
	return p.table[p.idx(b)] >= 2
}

func (p *testPredictor) update(b trace.Branch) {
	i := p.idx(b)
	if b.Taken {
		if p.table[i] < 3 {
			p.table[i]++
		}
	} else if p.table[i] > 0 {
		p.table[i]--
	}
	p.hist = (p.hist << 1) | boolBit(b.Taken)
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
