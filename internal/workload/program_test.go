package workload

import (
	"strings"
	"testing"

	"bpred/internal/trace"
)

func espressoProgram(t *testing.T) *Program {
	t.Helper()
	p, ok := ProfileByName("espresso")
	if !ok {
		t.Fatal("espresso profile missing")
	}
	return Build(p, 1)
}

func TestBuildDeterministic(t *testing.T) {
	p, _ := ProfileByName("espresso")
	a := Build(p, 7)
	b := Build(p, 7)
	if a.Segments() != b.Segments() || a.Sites() != b.Sites() {
		t.Fatal("same seed produced different structure")
	}
	ta := a.Emit(20000, 3)
	tb := b.Emit(20000, 3)
	for i := range ta.Branches {
		if ta.Branches[i] != tb.Branches[i] {
			t.Fatalf("same (profile, seed) diverged at branch %d", i)
		}
	}
}

func TestBuildDifferentSeedsDiffer(t *testing.T) {
	p, _ := ProfileByName("espresso")
	ta := Build(p, 1).Emit(5000, 1)
	tb := Build(p, 2).Emit(5000, 1)
	same := 0
	for i := range ta.Branches {
		if ta.Branches[i] == tb.Branches[i] {
			same++
		}
	}
	if same == len(ta.Branches) {
		t.Fatal("different program seeds produced identical traces")
	}
}

func TestSiteCountMatchesStatic(t *testing.T) {
	for _, name := range []string{"compress", "espresso", "real_gcc"} {
		p, _ := ProfileByName(name)
		prog := Build(p, 1)
		if prog.Sites() != p.Static {
			t.Errorf("%s: %d sites, want %d", name, prog.Sites(), p.Static)
		}
		if prog.Segments() < p.Static/15 {
			t.Errorf("%s: suspiciously few segments (%d)", name, prog.Segments())
		}
	}
}

func TestAddressesWordAlignedAndUnique(t *testing.T) {
	prog := espressoProgram(t)
	seen := make(map[uint64]bool)
	for _, seg := range prog.segments {
		for _, s := range seg.sites {
			if s.pc%4 != 0 {
				t.Fatalf("pc %#x not word aligned", s.pc)
			}
			if s.target%4 != 0 {
				t.Fatalf("target %#x not word aligned", s.target)
			}
			if s.pc < textBase {
				t.Fatalf("pc %#x below text base", s.pc)
			}
			if seen[s.pc] {
				t.Fatalf("duplicate pc %#x", s.pc)
			}
			seen[s.pc] = true
		}
	}
}

func TestLoopsJumpBackward(t *testing.T) {
	prog := espressoProgram(t)
	loops := 0
	for _, seg := range prog.segments {
		if !seg.loop {
			continue
		}
		loops++
		lb := seg.sites[len(seg.sites)-1]
		if lb.target >= lb.pc {
			t.Fatalf("loop branch at %#x targets forward %#x", lb.pc, lb.target)
		}
		if seg.trip < 1 {
			t.Fatalf("loop with trip %d", seg.trip)
		}
		if seg.tripJitter >= seg.trip {
			t.Fatalf("trip jitter %d >= trip %d", seg.tripJitter, seg.trip)
		}
	}
	if loops == 0 {
		t.Fatal("espresso program built without any loops")
	}
}

func TestNonLoopBranchesJumpForward(t *testing.T) {
	prog := espressoProgram(t)
	for _, seg := range prog.segments {
		n := len(seg.sites)
		for j, s := range seg.sites {
			if seg.loop && j == n-1 {
				continue
			}
			if s.target <= s.pc {
				t.Fatalf("conditional at %#x targets backward %#x", s.pc, s.target)
			}
		}
	}
}

func TestCorrelatedSitesHaveValidSources(t *testing.T) {
	prog := espressoProgram(t)
	found := 0
	for _, seg := range prog.segments {
		for j, s := range seg.sites {
			if s.kind != kindCorrelated {
				continue
			}
			found++
			if s.corrSrc < 0 || s.corrSrc >= j {
				t.Fatalf("correlated site %d has source %d", j, s.corrSrc)
			}
			if seg.sites[s.corrSrc].kind == kindLoop {
				t.Fatalf("correlated site sources a loop branch")
			}
			if s.corrNoise <= 0 || s.corrNoise > 0.2 {
				t.Fatalf("correlation noise %g out of range", s.corrNoise)
			}
		}
	}
	if found == 0 {
		t.Fatal("no correlated sites built for espresso (CorrFrac=0.30)")
	}
}

func TestPatternSitesNonConstant(t *testing.T) {
	prog := espressoProgram(t)
	for _, seg := range prog.segments {
		for _, s := range seg.sites {
			if s.kind != kindPattern {
				continue
			}
			if s.patLen < 2 {
				t.Fatalf("pattern length %d", s.patLen)
			}
			m := uint64(1)<<s.patLen - 1
			if s.pattern&m == 0 || s.pattern&m == m {
				t.Fatalf("constant pattern %b/%d", s.pattern, s.patLen)
			}
		}
	}
}

func TestExecProbsInRange(t *testing.T) {
	prog := espressoProgram(t)
	for _, seg := range prog.segments {
		for _, s := range seg.sites {
			if s.execProb <= 0 || s.execProb > 1 {
				t.Fatalf("execProb %g out of (0,1]", s.execProb)
			}
			if s.kind == kindBiased && (s.biasP <= 0 || s.biasP >= 1) {
				t.Fatalf("biasP %g out of (0,1)", s.biasP)
			}
		}
	}
}

func TestPhaseAssignment(t *testing.T) {
	// real_gcc is large: several phases plus an always-active core.
	p, _ := ProfileByName("real_gcc")
	prog := Build(p, 1)
	if prog.phaseCount < 2 {
		t.Fatalf("real_gcc phaseCount=%d, want >= 2", prog.phaseCount)
	}
	core := 0
	for _, ph := range prog.phaseOf {
		if ph == -1 {
			core++
		} else if ph < 0 || ph >= prog.phaseCount {
			t.Fatalf("phase %d out of range", ph)
		}
	}
	if core == 0 {
		t.Fatal("no core segments")
	}
	if len(prog.cumPhase) != prog.phaseCount {
		t.Fatalf("%d phase CDFs, want %d", len(prog.cumPhase), prog.phaseCount)
	}
	// Small SPEC programs run single-phase.
	pe, _ := ProfileByName("eqntott")
	if Build(pe, 1).phaseCount != 1 {
		t.Error("eqntott should be single-phase")
	}
}

func TestServiceSetOnlyForInterruptProfiles(t *testing.T) {
	pIBS, _ := ProfileByName("mpeg_play")
	if len(Build(pIBS, 1).service) == 0 {
		t.Error("IBS profile built without a service set")
	}
	pSPEC, _ := ProfileByName("espresso")
	if len(Build(pSPEC, 1).service) != 0 {
		t.Error("SPEC profile built with a service set")
	}
}

func TestBuildPanicsOnBadProfile(t *testing.T) {
	cases := []Profile{
		{Name: "zero"},
		{Name: "inverted", Static: 100, Hot50: 50, Hot90: 20},
		{Name: "overflow", Static: 10, Hot50: 5, Hot90: 20},
	}
	for _, p := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Build(%s) did not panic", p.Name)
				}
			}()
			Build(p, 1)
		}()
	}
}

func TestSiteKindString(t *testing.T) {
	want := map[siteKind]string{
		kindBiased:     "biased",
		kindLoop:       "loop",
		kindPattern:    "pattern",
		kindCorrelated: "correlated",
		siteKind(9):    "siteKind(9)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestCDFsMonotoneNormalized(t *testing.T) {
	p, _ := ProfileByName("real_gcc")
	prog := Build(p, 1)
	check := func(name string, cum []float64) {
		prev := 0.0
		for i, v := range cum {
			if v < prev {
				t.Fatalf("%s: CDF decreases at %d", name, i)
			}
			prev = v
		}
		if cum[len(cum)-1] != 1 {
			t.Fatalf("%s: CDF ends at %g", name, cum[len(cum)-1])
		}
	}
	check("global", prog.cum)
	for i, c := range prog.cumPhase {
		check("phase", c)
		_ = i
	}
}

// The emitted trace must be a valid branch stream: all PCs belong to
// sites, outcomes for loop branches follow the trip structure.
func TestEmitProducesKnownPCs(t *testing.T) {
	prog := espressoProgram(t)
	valid := make(map[uint64]bool)
	for _, seg := range prog.segments {
		for _, s := range seg.sites {
			valid[s.pc] = true
		}
	}
	tr := prog.Emit(50000, 2)
	for i, b := range tr.Branches {
		if !valid[b.PC] {
			t.Fatalf("branch %d has unknown pc %#x", i, b.PC)
		}
	}
	if tr.Len() != 50000 {
		t.Fatalf("emitted %d branches, want 50000", tr.Len())
	}
	if tr.Instructions == 0 {
		t.Fatal("instruction metadata not set")
	}
}

func TestEmitterIsUnbounded(t *testing.T) {
	prog := espressoProgram(t)
	e := prog.NewEmitter(1)
	for i := 0; i < 100000; i++ {
		if _, ok := e.Next(); !ok {
			t.Fatal("emitter ended")
		}
	}
}

func TestTraceSource(t *testing.T) {
	// Emitter implements trace.Source.
	var _ trace.Source = (*Emitter)(nil)
}

func TestSummarize(t *testing.T) {
	p, _ := ProfileByName("mpeg_play")
	s := Build(p, 1).Summarize()
	if s.Name != "mpeg_play" || s.Sites != p.Static {
		t.Fatalf("summary identity: %+v", s)
	}
	if s.Biased+s.Patterns+s.Correlated+s.Loops != s.Sites {
		t.Errorf("kind counts do not partition sites: %+v", s)
	}
	if s.Phased > s.Biased {
		t.Errorf("phased %d exceeds biased %d", s.Phased, s.Biased)
	}
	if s.LoopSegments == 0 || s.TightLoops == 0 || s.JitteredLoops == 0 {
		t.Errorf("loop structure missing: %+v", s)
	}
	if s.TripMin < 1 || s.TripMedian < s.TripMin || s.TripMax < s.TripMedian {
		t.Errorf("trip stats disordered: %d/%d/%d", s.TripMin, s.TripMedian, s.TripMax)
	}
	if s.PhaseCount < 2 || s.CoreSegments == 0 || s.ServiceSegments == 0 {
		t.Errorf("dynamics summary wrong: %+v", s)
	}
	out := s.Render()
	for _, want := range []string{"mpeg_play", "loop segments", "phases", "service"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
