// Package workload synthesizes branch traces with the statistical
// structure of the paper's fourteen benchmarks (six SPECint92, eight
// IBS-Ultrix).
//
// The original inputs were pixie and hardware-monitor traces of MIPS
// R2000 workstations; those are unavailable, so this package
// substitutes a calibrated program model (see DESIGN.md §1.2). A
// Program is a set of weighted segments (functions) of branch sites;
// sites are loops, biased conditionals, periodic-pattern branches, or
// branches correlated with earlier branches in the same segment.
// Segment weights and per-site execution probabilities are constructed
// so the emitted trace's hot-set coverage curve matches the paper's
// Table 1/Table 2 characterization of the corresponding benchmark:
// the same number of static branches, the same number of branches
// covering 50%/90% of dynamic instances, and a bias mix dominated by
// highly biased branches.
//
// Everything is deterministic given (profile, seed, length).
package workload

import "fmt"

// Suite identifies which benchmark suite a profile models.
type Suite string

// The two suites studied in the paper.
const (
	SPECint92 Suite = "SPECint92"
	IBSUltrix Suite = "IBS-Ultrix"
)

// Profile parameterizes the synthetic generator to mimic one paper
// benchmark. Coverage fields come straight from the paper's Tables 1
// and 2; behavioral fractions encode the paper's qualitative
// descriptions (small-footprint SPEC programs have lower-bias, more
// correlated hot branches; large programs are dominated by highly
// biased branches and loops).
type Profile struct {
	// Name is the benchmark name as printed in the paper.
	Name string
	// Suite is the benchmark's suite.
	Suite Suite

	// Static is the number of static conditional branch sites
	// (Table 1, "Static Conditional Branches").
	Static int
	// Hot50 is the number of most-frequent static branches covering
	// 50% of dynamic instances (Table 2 where given, otherwise
	// derived; see DeriveBuckets).
	Hot50 int
	// Hot90 covers 90% (Table 1's last column).
	Hot90 int
	// Hot99 covers 99%; zero means derive it.
	Hot99 int

	// DynamicBranches is the paper's full-trace dynamic conditional
	// branch count, kept as metadata (emitted traces are scaled).
	DynamicBranches uint64
	// BranchFrac is conditional branches / dynamic instructions
	// (the parenthesized percentage in Table 1).
	BranchFrac float64

	// LoopFrac is the fraction of hot sites that are loop exit
	// branches.
	LoopFrac float64
	// PatternFrac is the fraction of hot sites with short periodic
	// outcome patterns (self-history predictable).
	PatternFrac float64
	// CorrFrac is the fraction of hot sites correlated with an
	// earlier branch in their segment (global-history predictable).
	CorrFrac float64
	// HighBiasFrac is the probability that a plain conditional site
	// is strongly biased (>= ~0.95 one-sided).
	HighBiasFrac float64
	// PhasedFrac is the fraction of plain conditionals whose noise
	// arrives in long bursts (phases) rather than independently per
	// instance. Phased noise is predictable by any adaptive scheme;
	// iid noise is each predictor's floor.
	PhasedFrac float64
	// TripMean is the mean loop trip count.
	TripMean float64
	// InterruptEvery, when nonzero, is the mean number of branches
	// between asynchronous interrupt bursts that execute a random
	// cold segment — modeling the OS/X-server activity captured in
	// the IBS traces. Zero disables interrupts.
	InterruptEvery int
}

// profiles reproduces the paper's Table 1 (counts, fractions) plus
// Table 2 hot-set data where the paper provides it. Behavioral knobs
// follow §2's characterization: SPECint92's small-footprint programs
// (all but gcc) concentrate execution in few, lower-bias, more
// correlated branches; gcc and the IBS programs spread execution over
// many, mostly highly biased branches.
var profiles = []Profile{
	// --- SPECint92 ---
	{
		Name: "compress", Suite: SPECint92,
		Static: 236, Hot50: 3, Hot90: 13,
		DynamicBranches: 11_739_532, BranchFrac: 0.140,
		LoopFrac: 0.15, PatternFrac: 0.14, CorrFrac: 0.30,
		HighBiasFrac: 0.60, PhasedFrac: 0.55, TripMean: 24,
	},
	{
		Name: "eqntott", Suite: SPECint92,
		Static: 494, Hot50: 2, Hot90: 5,
		DynamicBranches: 342_595_193, BranchFrac: 0.246,
		LoopFrac: 0.10, PatternFrac: 0.16, CorrFrac: 0.36,
		HighBiasFrac: 0.50, PhasedFrac: 0.50, TripMean: 16,
	},
	{
		Name: "espresso", Suite: SPECint92,
		Static: 1764, Hot50: 12, Hot90: 110, Hot99: 12 + 93 + 296,
		DynamicBranches: 76_466_469, BranchFrac: 0.147,
		LoopFrac: 0.18, PatternFrac: 0.06, CorrFrac: 0.30,
		HighBiasFrac: 0.70, PhasedFrac: 0.60, TripMean: 16,
	},
	{
		Name: "gcc", Suite: SPECint92,
		Static: 9531, Hot50: 210, Hot90: 2020,
		DynamicBranches: 21_579_307, BranchFrac: 0.152,
		LoopFrac: 0.15, PatternFrac: 0.05, CorrFrac: 0.14,
		HighBiasFrac: 0.85, PhasedFrac: 0.45, TripMean: 12,
	},
	{
		Name: "xlisp", Suite: SPECint92,
		Static: 489, Hot50: 6, Hot90: 48,
		DynamicBranches: 147_425_333, BranchFrac: 0.113,
		LoopFrac: 0.12, PatternFrac: 0.12, CorrFrac: 0.25,
		HighBiasFrac: 0.70, PhasedFrac: 0.60, TripMean: 14,
	},
	{
		Name: "sc", Suite: SPECint92,
		Static: 1269, Hot50: 16, Hot90: 157,
		DynamicBranches: 150_381_340, BranchFrac: 0.169,
		LoopFrac: 0.15, PatternFrac: 0.10, CorrFrac: 0.22,
		HighBiasFrac: 0.72, PhasedFrac: 0.60, TripMean: 18,
	},
	// --- IBS-Ultrix ---
	{
		Name: "groff", Suite: IBSUltrix,
		Static: 6333, Hot50: 48, Hot90: 459,
		DynamicBranches: 11_901_481, BranchFrac: 0.113,
		LoopFrac: 0.15, PatternFrac: 0.05, CorrFrac: 0.14,
		HighBiasFrac: 0.85, PhasedFrac: 0.50, TripMean: 12, InterruptEvery: 700,
	},
	{
		Name: "gs", Suite: IBSUltrix,
		Static: 12852, Hot50: 120, Hot90: 1160,
		DynamicBranches: 16_308_247, BranchFrac: 0.138,
		LoopFrac: 0.15, PatternFrac: 0.05, CorrFrac: 0.14,
		HighBiasFrac: 0.85, PhasedFrac: 0.50, TripMean: 12, InterruptEvery: 700,
	},
	{
		Name: "mpeg_play", Suite: IBSUltrix,
		Static: 5598, Hot50: 64, Hot90: 532, Hot99: 64 + 466 + 1372,
		DynamicBranches: 9_566_290, BranchFrac: 0.096,
		LoopFrac: 0.20, PatternFrac: 0.05, CorrFrac: 0.14,
		HighBiasFrac: 0.85, PhasedFrac: 0.55, TripMean: 16, InterruptEvery: 700,
	},
	{
		Name: "nroff", Suite: IBSUltrix,
		Static: 5249, Hot50: 24, Hot90: 228,
		DynamicBranches: 22_574_884, BranchFrac: 0.173,
		LoopFrac: 0.15, PatternFrac: 0.05, CorrFrac: 0.14,
		HighBiasFrac: 0.85, PhasedFrac: 0.50, TripMean: 12, InterruptEvery: 700,
	},
	{
		Name: "real_gcc", Suite: IBSUltrix,
		Static: 17361, Hot50: 327, Hot90: 3214, Hot99: 327 + 2877 + 6398,
		DynamicBranches: 14_309_667, BranchFrac: 0.133,
		LoopFrac: 0.12, PatternFrac: 0.05, CorrFrac: 0.14,
		HighBiasFrac: 0.85, PhasedFrac: 0.40, TripMean: 10, InterruptEvery: 700,
	},
	{
		Name: "sdet", Suite: IBSUltrix,
		Static: 5310, Hot50: 8, Hot90: 506,
		DynamicBranches: 5_514_439, BranchFrac: 0.131,
		LoopFrac: 0.15, PatternFrac: 0.05, CorrFrac: 0.14,
		HighBiasFrac: 0.85, PhasedFrac: 0.50, TripMean: 12, InterruptEvery: 600,
	},
	{
		Name: "verilog", Suite: IBSUltrix,
		Static: 4636, Hot50: 56, Hot90: 650,
		DynamicBranches: 6_212_381, BranchFrac: 0.132,
		LoopFrac: 0.15, PatternFrac: 0.05, CorrFrac: 0.14,
		HighBiasFrac: 0.85, PhasedFrac: 0.50, TripMean: 12, InterruptEvery: 700,
	},
	{
		Name: "video_play", Suite: IBSUltrix,
		Static: 4606, Hot50: 68, Hot90: 757,
		DynamicBranches: 5_759_231, BranchFrac: 0.110,
		LoopFrac: 0.18, PatternFrac: 0.05, CorrFrac: 0.14,
		HighBiasFrac: 0.85, PhasedFrac: 0.55, TripMean: 14, InterruptEvery: 700,
	},
}

// Profiles returns the fourteen paper benchmark profiles, in the
// paper's Table 1 order. The returned slice is a copy.
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// ProfileNames returns the benchmark names in Table 1 order.
func ProfileNames() []string {
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	return names
}

// ProfileByName returns the named profile. ok is false if the name is
// unknown.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// FocusProfiles returns the three benchmarks the paper's figures
// focus on: espresso, mpeg_play, and real_gcc.
func FocusProfiles() []Profile {
	var out []Profile
	for _, n := range []string{"espresso", "mpeg_play", "real_gcc"} {
		p, _ := ProfileByName(n)
		out = append(out, p)
	}
	return out
}

// Buckets describes a profile's coverage structure: how many static
// sites receive the first 50%, next 40%, next 9%, and final 1% of
// dynamic instances (the paper's Table 2 bands).
type Buckets struct {
	N50, N40, N9, N1 int
}

// Total returns the static site count.
func (b Buckets) Total() int { return b.N50 + b.N40 + b.N9 + b.N1 }

// DeriveBuckets computes the coverage bucket sizes for a profile. For
// profiles with paper-provided Hot99 the split is exact; otherwise
// the next-9% band is estimated as 30% of the sites beyond Hot90
// (the paper's three Table 2 rows fall between 18% and 45%).
func DeriveBuckets(p Profile) Buckets {
	b := Buckets{N50: p.Hot50, N40: p.Hot90 - p.Hot50}
	rest := p.Static - p.Hot90
	if rest < 0 {
		rest = 0
	}
	switch {
	case p.Hot99 > 0:
		b.N9 = p.Hot99 - p.Hot90
	default:
		b.N9 = rest * 30 / 100
	}
	if b.N9 > rest {
		b.N9 = rest
	}
	if b.N9 < 0 {
		b.N9 = 0
	}
	b.N1 = rest - b.N9
	return b
}

// Validate checks a profile for the invariants Build requires plus
// basic sanity of the behavioral knobs, returning a descriptive error
// for the first violation. Library users constructing custom profiles
// should validate before Build (which panics on structural errors, as
// the built-in profiles are known good).
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile has no name")
	case p.Static <= 0:
		return fmt.Errorf("workload: %s: Static=%d", p.Name, p.Static)
	case p.Hot50 <= 0:
		return fmt.Errorf("workload: %s: Hot50=%d", p.Name, p.Hot50)
	case p.Hot90 < p.Hot50:
		return fmt.Errorf("workload: %s: Hot90=%d below Hot50=%d", p.Name, p.Hot90, p.Hot50)
	case p.Static < p.Hot90:
		return fmt.Errorf("workload: %s: Static=%d below Hot90=%d", p.Name, p.Static, p.Hot90)
	case p.Hot99 != 0 && (p.Hot99 < p.Hot90 || p.Hot99 > p.Static):
		return fmt.Errorf("workload: %s: Hot99=%d outside [Hot90, Static]", p.Name, p.Hot99)
	case p.LoopFrac < 0 || p.PatternFrac < 0 || p.CorrFrac < 0:
		return fmt.Errorf("workload: %s: negative behavior fraction", p.Name)
	case p.LoopFrac+p.PatternFrac+p.CorrFrac >= 1:
		return fmt.Errorf("workload: %s: behavior fractions sum to %.2f (must stay below 1)",
			p.Name, p.LoopFrac+p.PatternFrac+p.CorrFrac)
	case p.HighBiasFrac < 0 || p.HighBiasFrac > 1:
		return fmt.Errorf("workload: %s: HighBiasFrac=%.2f", p.Name, p.HighBiasFrac)
	case p.PhasedFrac < 0 || p.PhasedFrac > 1:
		return fmt.Errorf("workload: %s: PhasedFrac=%.2f", p.Name, p.PhasedFrac)
	case p.TripMean < 2:
		return fmt.Errorf("workload: %s: TripMean=%.1f (need >= 2)", p.Name, p.TripMean)
	case p.BranchFrac < 0 || p.BranchFrac > 1:
		return fmt.Errorf("workload: %s: BranchFrac=%.2f", p.Name, p.BranchFrac)
	case p.InterruptEvery < 0:
		return fmt.Errorf("workload: %s: InterruptEvery=%d", p.Name, p.InterruptEvery)
	}
	return nil
}
