package workload_test

import (
	"fmt"

	"bpred/internal/trace"
	"bpred/internal/workload"
)

// Generating a calibrated synthetic workload and checking its hot-set
// structure against the paper's characterization.
func ExampleGenerate() {
	profile, _ := workload.ProfileByName("espresso")
	tr := workload.Generate(profile, 1, 200_000)
	s := trace.AnalyzeTrace(tr)
	fmt.Println("branches:", s.Dynamic)
	fmt.Println("paper hot-50% target:", profile.Hot50)
	hot := s.StaticFor(0.5)
	fmt.Println("measured hot-50% within 2x of target:",
		hot >= profile.Hot50/2 && hot <= profile.Hot50*2)
	// Output:
	// branches: 200000
	// paper hot-50% target: 12
	// measured hot-50% within 2x of target: true
}

// Streaming a workload without materializing a trace.
func ExampleProgram_NewEmitter() {
	profile, _ := workload.ProfileByName("eqntott")
	program := workload.Build(profile, 7)
	em := program.NewEmitter(7)
	taken := 0
	for i := 0; i < 10_000; i++ {
		b, _ := em.Next()
		if b.Taken {
			taken++
		}
	}
	fmt.Println("stream is taken-dominant:", taken > 5_000)
	// Output:
	// stream is taken-dominant: true
}

// Interleaving two programs into one multiprogrammed stream.
func ExampleInterleaveProfiles() {
	tr, err := workload.InterleaveProfiles([]string{"compress", "xlisp"}, 200, 50_000, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println(tr.Name, tr.Len())
	// Output:
	// interleave(compress+xlisp) 50000
}
