package workload

import (
	"fmt"
	"strings"

	"bpred/internal/rng"
	"bpred/internal/trace"
)

// Interleave merges branch traces round-robin in quanta of roughly
// `quantum` branches (exponentially distributed), modeling a
// multiprogrammed system's context switches. The IBS traces the paper
// uses capture exactly this effect — application, X server, and
// kernel activity time-slicing one predictor — and interleaving is
// the standard way to study its impact on predictor state (each
// switch both pollutes history registers and widens the working set).
//
// The merged trace ends after maxLen branches or when any input is
// exhausted, whichever comes first. Inputs are consumed as streams;
// pass Emitters for unbounded sources.
func Interleave(quantum, maxLen int, seed uint64, sources ...trace.Source) *trace.Trace {
	if quantum <= 0 {
		panic(fmt.Sprintf("workload: Interleave quantum %d", quantum))
	}
	if maxLen <= 0 {
		panic(fmt.Sprintf("workload: Interleave maxLen %d", maxLen))
	}
	if len(sources) == 0 {
		panic("workload: Interleave with no sources")
	}
	g := rng.NewXoshiro256(rng.Mix64(seed) ^ 0x452821E638D01377)
	out := &trace.Trace{Name: "interleaved"}
	cur := 0
	for {
		span := int(g.ExpFloat64() * float64(quantum))
		if span < 1 {
			span = 1
		}
		for i := 0; i < span; i++ {
			b, ok := sources[cur].Next()
			if !ok {
				return out
			}
			out.Append(b)
			if out.Len() >= maxLen {
				return out
			}
		}
		cur = (cur + 1) % len(sources)
	}
}

// InterleaveProfiles builds and interleaves the named workloads for n
// total branches, offsetting each program's addresses into its own
// address-space slot so cross-program branches never share PCs (as
// with per-process address spaces on MIPS). The Name records the mix.
func InterleaveProfiles(names []string, quantum, n int, seed uint64) (*trace.Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: InterleaveProfiles n=%d", n)
	}
	var sources []trace.Source
	for i, name := range names {
		p, ok := ProfileByName(name)
		if !ok {
			return nil, fmt.Errorf("workload: unknown profile %q", name)
		}
		prog := Build(p, seed+uint64(i))
		em := prog.NewEmitter(seed + uint64(i)*7919)
		sources = append(sources, &offsetSource{src: em, offset: uint64(i) << 28})
	}
	merged := Interleave(quantum, n, seed, sources...)
	merged.Name = "interleave(" + strings.Join(names, "+") + ")"
	return merged, nil
}

// offsetSource relocates a stream into its own address-space slot.
type offsetSource struct {
	src    trace.Source
	offset uint64
}

func (o *offsetSource) Next() (trace.Branch, bool) {
	b, ok := o.src.Next()
	if !ok {
		return b, false
	}
	b.PC += o.offset
	b.Target += o.offset
	return b, true
}
