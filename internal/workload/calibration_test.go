package workload

import (
	"math"
	"testing"

	"bpred/internal/trace"
)

// Calibration tests: emitted traces must reproduce the paper's
// Table 1/Table 2 characterization within tolerance. These run on
// moderate traces, so tolerances are loose enough for sampling noise
// but tight enough to catch calibration regressions.

func analyze(t *testing.T, name string, n int) (*Stats, Profile) {
	t.Helper()
	p, ok := ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	tr := Generate(p, 1, n)
	return statsOf(tr), p
}

// Stats aliases trace.Stats for brevity.
type Stats = trace.Stats

func statsOf(tr *trace.Trace) *Stats { return trace.AnalyzeTrace(tr) }

func within(got, want, relTol float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want) <= relTol*want
}

func TestCalibrationHotSets(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs a large trace")
	}
	cases := []struct {
		name string
		n    int
	}{
		{"espresso", 600_000},
		{"mpeg_play", 600_000},
		{"real_gcc", 1_000_000},
	}
	for _, c := range cases {
		s, p := analyze(t, c.name, c.n)
		got50 := s.StaticFor(0.5)
		if !within(float64(got50), float64(p.Hot50), 0.4) {
			t.Errorf("%s: hot-50%% set %d, paper %d", c.name, got50, p.Hot50)
		}
		got90 := s.StaticFor(0.9)
		if !within(float64(got90), float64(p.Hot90), 0.35) {
			t.Errorf("%s: hot-90%% set %d, paper %d", c.name, got90, p.Hot90)
		}
	}
}

func TestCalibrationStaticCount(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs a large trace")
	}
	// The realized static count undershoots the profile (cold sites
	// may not appear in a scaled trace) but must reach a large
	// fraction and never exceed it.
	for _, name := range []string{"espresso", "mpeg_play"} {
		s, p := analyze(t, name, 800_000)
		if s.Static > p.Static {
			t.Errorf("%s: realized static %d exceeds profile %d", name, s.Static, p.Static)
		}
		// Scaled traces do not reach every cold site the paper's
		// full traces reach; see EXPERIMENTS.md scaling notes.
		if float64(s.Static) < 0.40*float64(p.Static) {
			t.Errorf("%s: realized static %d too small vs profile %d", name, s.Static, p.Static)
		}
	}
}

func TestCalibrationTakenRate(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs a large trace")
	}
	// Conditional branches in the paper's traces are taken roughly
	// 55-70% of the time.
	for _, name := range []string{"espresso", "real_gcc"} {
		s, _ := analyze(t, name, 400_000)
		if r := s.TakenRate(); r < 0.45 || r > 0.8 {
			t.Errorf("%s: taken rate %.2f outside [0.45, 0.8]", name, r)
		}
	}
}

func TestCalibrationHighBiasDominance(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs a large trace")
	}
	// Paper §2: "A large proportion of the branches ... are very
	// highly biased". Most dynamic instances must come from branches
	// at least 80% one-sided.
	for _, name := range []string{"mpeg_play", "real_gcc"} {
		s, _ := analyze(t, name, 400_000)
		if f := s.HighlyBiasedFraction(0.8); f < 0.6 {
			t.Errorf("%s: only %.2f of instances from >=80%%-biased branches", name, f)
		}
	}
}

func TestCalibrationInstructionsMetadata(t *testing.T) {
	p, _ := ProfileByName("espresso")
	tr := Generate(p, 1, 100_000)
	implied := float64(tr.Len()) / float64(tr.Instructions)
	if !within(implied, p.BranchFrac, 0.01) {
		t.Errorf("branch fraction metadata %.4f, want %.4f", implied, p.BranchFrac)
	}
}

func TestCalibrationSuiteContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs a large trace")
	}
	// The paper's central workload contrast: small SPEC programs
	// concentrate execution in far fewer branches than IBS programs.
	sSpec, _ := analyze(t, "eqntott", 300_000)
	sIBS, _ := analyze(t, "real_gcc", 300_000)
	if sSpec.StaticFor(0.9) >= sIBS.StaticFor(0.9)/10 {
		t.Errorf("suite contrast lost: eqntott hot90=%d vs real_gcc hot90=%d",
			sSpec.StaticFor(0.9), sIBS.StaticFor(0.9))
	}
}
