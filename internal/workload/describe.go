package workload

import (
	"fmt"
	"sort"
	"strings"
)

// ProgramSummary describes a built program's static structure — the
// introspection behind `bptrace describe`.
type ProgramSummary struct {
	Name     string
	Sites    int
	Segments int
	// Kind counts by behavior model.
	Biased, Phased, Patterns, Correlated, Loops int
	// Loop structure.
	LoopSegments  int
	TightLoops    int
	JitteredLoops int
	TripMin       int
	TripMedian    int
	TripMax       int
	// Nested sites execute with probability < 1 per pass.
	Nested int
	// Phases and service set.
	PhaseCount      int
	CoreSegments    int
	ServiceSegments int
}

// Summarize reports the program's static structure.
func (p *Program) Summarize() ProgramSummary {
	s := ProgramSummary{
		Name:            p.profile.Name,
		Sites:           p.Sites(),
		Segments:        p.Segments(),
		PhaseCount:      p.phaseCount,
		ServiceSegments: len(p.service),
	}
	var trips []int
	for i, seg := range p.segments {
		if p.phaseOf[i] == -1 {
			s.CoreSegments++
		}
		if seg.loop {
			s.LoopSegments++
			trips = append(trips, seg.trip)
			if len(seg.sites) == 1 {
				s.TightLoops++
			}
			if seg.tripJitter > 0 {
				s.JitteredLoops++
			}
		}
		for _, site := range seg.sites {
			if site.execProb < 1 {
				s.Nested++
			}
			switch site.kind {
			case kindBiased:
				s.Biased++
				if site.phased {
					s.Phased++
				}
			case kindPattern:
				s.Patterns++
			case kindCorrelated:
				s.Correlated++
			case kindLoop:
				s.Loops++
			}
		}
	}
	if len(trips) > 0 {
		sort.Ints(trips)
		s.TripMin = trips[0]
		s.TripMedian = trips[len(trips)/2]
		s.TripMax = trips[len(trips)-1]
	}
	return s
}

// Render formats the summary for terminal output.
func (s ProgramSummary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program:            %s\n", s.Name)
	fmt.Fprintf(&b, "static sites:       %d in %d segments\n", s.Sites, s.Segments)
	fmt.Fprintf(&b, "site kinds:         %d biased (%d phased), %d pattern, %d correlated, %d loop\n",
		s.Biased, s.Phased, s.Patterns, s.Correlated, s.Loops)
	fmt.Fprintf(&b, "loop segments:      %d (%d tight, %d jittered), trips %d/%d/%d (min/median/max)\n",
		s.LoopSegments, s.TightLoops, s.JitteredLoops, s.TripMin, s.TripMedian, s.TripMax)
	fmt.Fprintf(&b, "nested sites:       %d (execute conditionally per pass)\n", s.Nested)
	fmt.Fprintf(&b, "phases:             %d rotating (%d always-active core segments)\n",
		s.PhaseCount, s.CoreSegments)
	if s.ServiceSegments > 0 {
		fmt.Fprintf(&b, "service segments:   %d (kernel/X interrupt working set)\n", s.ServiceSegments)
	}
	return b.String()
}
