package textplot

import (
	"strings"
	"testing"

	"bpred/internal/core"
	"bpred/internal/sweep"
	"bpred/internal/workload"
)

func surface(t *testing.T, scheme core.Scheme, metered bool) *sweep.Surface {
	t.Helper()
	p, _ := workload.ProfileByName("espresso")
	tr := workload.Generate(p, 2, 20_000)
	s, err := sweep.Run(sweep.Options{
		Scheme:  scheme,
		MinBits: 4, MaxBits: 6,
		Metered: metered,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGridContainsAllTiers(t *testing.T) {
	s := surface(t, core.SchemeGAs, false)
	out := Grid(s)
	for _, want := range []string{"2^4 ", "2^5 ", "2^6 ", "GAs", "espresso"} {
		if !strings.Contains(out, want) {
			t.Errorf("grid missing %q:\n%s", want, out)
		}
	}
	// Exactly one best marker per tier.
	if n := strings.Count(out, "*"); n != 3+1 { // 3 tiers + legend
		t.Errorf("expected 3 best markers + legend, found %d '*' in:\n%s", n, out)
	}
}

func TestGridAlignment(t *testing.T) {
	s := surface(t, core.SchemeGShare, false)
	out := Grid(s)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Tier lines: cells for r > tierBits must be blank, inside-grid
	// gaps use '.' placeholders only when a slot is skipped.
	var tierLines []string
	for _, l := range lines {
		if strings.HasPrefix(l, "2^") {
			tierLines = append(tierLines, l)
		}
	}
	if len(tierLines) != 3 {
		t.Fatalf("%d tier lines, want 3:\n%s", len(tierLines), out)
	}
}

func TestAliasGrid(t *testing.T) {
	s := surface(t, core.SchemeGAs, true)
	out := AliasGrid(s)
	if !strings.Contains(out, "aliasing conflict rate") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "2^6") {
		t.Errorf("missing tier:\n%s", out)
	}
}

func TestDiffGrid(t *testing.T) {
	d := [][]float64{
		{0.01, -0.02},
		{0, 0.005, -0.005},
	}
	out := DiffGrid("gshare vs GAs", 4, d)
	for _, want := range []string{"gshare vs GAs", "+1.00", "-2.00", "+0.50", "2^4", "2^5"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff grid missing %q:\n%s", want, out)
		}
	}
}

func TestBars(t *testing.T) {
	out := Bars("misprediction by size", []CurvePoint{
		{"2^4", 0.20},
		{"2^15", 0.05},
	})
	if !strings.Contains(out, "20.00%") || !strings.Contains(out, "5.00%") {
		t.Errorf("bars missing values:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3", len(lines))
	}
	long := strings.Count(lines[1], "#")
	short := strings.Count(lines[2], "#")
	if long <= short {
		t.Errorf("bar lengths not proportional: %d vs %d", long, short)
	}
}

func TestBarsEmptyAndZero(t *testing.T) {
	if out := Bars("empty", nil); !strings.Contains(out, "empty") {
		t.Error("empty bars lost title")
	}
	out := Bars("zeros", []CurvePoint{{"a", 0}})
	if !strings.Contains(out, "0.00%") {
		t.Errorf("zero bars: %s", out)
	}
}
