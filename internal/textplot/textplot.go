// Package textplot renders design-space results as terminal text: the
// tier-by-split grids standing in for the paper's 3-D bar charts
// (Figures 2-10), with the per-tier best configuration marked the way
// the paper blackens its best-in-tier bars.
package textplot

import (
	"fmt"
	"strings"

	"bpred/internal/sweep"
)

// Grid renders a surface as a table: one line per tier (counter
// budget), one column per row/column split, cells in percent. The
// best cell in each tier is marked with '*'.
func Grid(s *sweep.Surface) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s — misprediction rate (%%), rows: counters, cols: 2^r rows x 2^c cols\n",
		s.Scheme, s.Trace)
	maxSplits := s.MaxBits + 1

	// Header: row-bit counts.
	b.WriteString("counters  |")
	for r := 0; r < maxSplits; r++ {
		fmt.Fprintf(&b, " r=%-5d", r)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 10+8*maxSplits) + "\n")

	for _, n := range s.Tiers() {
		fmt.Fprintf(&b, "2^%-2d %5d|", n, 1<<n)
		best, haveBest := s.BestInTier(n)
		for r := 0; r <= s.MaxBits; r++ {
			pt, ok := s.At(n, r)
			if !ok {
				if r <= n {
					b.WriteString("      . ")
				} else {
					b.WriteString("        ")
				}
				continue
			}
			mark := " "
			if haveBest && pt.Config == best.Config {
				mark = "*"
			}
			fmt.Fprintf(&b, " %5.2f%s ", 100*pt.Metrics.MispredictRate(), mark)
		}
		b.WriteString("\n")
	}
	b.WriteString("(* = best configuration in tier)\n")
	return b.String()
}

// AliasGrid renders a metered surface's conflict rates in the same
// layout (the paper's Figure 5).
func AliasGrid(s *sweep.Surface) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s — aliasing conflict rate (%% of accesses)\n", s.Scheme, s.Trace)
	for _, n := range s.Tiers() {
		fmt.Fprintf(&b, "2^%-2d %5d|", n, 1<<n)
		for r := 0; r <= n; r++ {
			pt, ok := s.At(n, r)
			if !ok {
				b.WriteString("      . ")
				continue
			}
			fmt.Fprintf(&b, " %5.2f  ", 100*pt.Metrics.Alias.ConflictRate())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// DiffGrid renders a surface difference (sweep.Diff output) with
// signs, in units of percentage points. Positive cells mean the first
// surface predicts better, matching the paper's Figures 7 and 8.
func DiffGrid(title string, minBits int, d [][]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — misprediction difference (percentage points)\n", title)
	for t := range d {
		n := minBits + t
		fmt.Fprintf(&b, "2^%-2d %5d|", n, 1<<n)
		for _, v := range d[t] {
			fmt.Fprintf(&b, " %+5.2f  ", 100*v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Curve renders a one-dimensional sweep (e.g. Figure 2's
// address-indexed rates or Figure 3's GAg rates) as labeled bars.
type CurvePoint struct {
	Label string
	Value float64 // rate in [0, 1]
}

// Bars renders curve points as horizontal ASCII bars scaled to the
// maximum value.
func Bars(title string, pts []CurvePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	max := 0.0
	for _, p := range pts {
		if p.Value > max {
			max = p.Value
		}
	}
	const width = 48
	for _, p := range pts {
		n := 0
		if max > 0 {
			n = int(p.Value / max * width)
		}
		fmt.Fprintf(&b, "%-12s %6.2f%% |%s\n", p.Label, 100*p.Value, strings.Repeat("#", n))
	}
	return b.String()
}
