package cluster

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bpred/internal/core"
	"bpred/internal/sim"
	"bpred/internal/sweep"
	"bpred/internal/trace"
)

// runCtx returns a generous outer deadline for fleet tests (the CI
// box can be a single slow core).
func runCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// fakeCell fabricates a settled metric for scheduler-only tests that
// never run the simulator.
func fakeCell(fp string) CellResult {
	return CellResult{Fingerprint: fp, Metrics: sim.Metrics{Name: "fake", Branches: 1}}
}

func TestClusterMatchesSingleNode(t *testing.T) {
	tr := testTrace(t, 20000, 1)
	o := chaosSweepOpts()
	refCSV, refBPC := reference(t, tr, o)

	dir := t.TempDir()
	coord := NewCoordinator(Config{Dir: dir, ChunkCells: 3})
	f := startFleet(t, coord, tracesFor(tr), []string{"w1", "w2", "w3"}, nil)

	configs := sweep.Configs(o)
	ms, err := coord.RunCells(runCtx(t), tr.Digest(), uint64(o.Sim.Warmup), configs)
	if err != nil {
		t.Fatalf("RunCells: %v", err)
	}
	if len(ms) != len(configs) {
		t.Fatalf("got %d metrics, want %d", len(ms), len(configs))
	}
	for i := range ms {
		if ms[i].Name == "" {
			t.Fatalf("cell %d (%s) came back unsettled", i, configs[i].Fingerprint())
		}
	}

	// Exactly-once: fleet-wide acceptances equal the distinct cells.
	snap := coord.Counters().Snapshot()
	if snap.ConfigsCompleted != uint64(len(configs)) {
		t.Fatalf("ConfigsCompleted = %d, want exactly %d", snap.ConfigsCompleted, len(configs))
	}
	// And with no failures injected, execution was exactly-once too.
	var computed uint64
	for _, w := range f.workers {
		computed += w.Stats().CellsComputed
	}
	if computed != uint64(len(configs)) {
		t.Fatalf("fleet computed %d cells, want %d (no failures were injected)", computed, len(configs))
	}

	// Piggybacked replication reached the non-computing peers.
	waitUntil(t, 30*time.Second, "replicas to install", func() bool {
		var n uint64
		for _, w := range f.workers {
			n += w.Stats().ReplicasInstalled
		}
		return n > 0
	})

	// A second pass is served wholly from the ledger.
	before := coord.Counters().Snapshot().ConfigsCached
	ms2, err := coord.RunCells(runCtx(t), tr.Digest(), uint64(o.Sim.Warmup), configs)
	if err != nil {
		t.Fatalf("second RunCells: %v", err)
	}
	for i := range ms2 {
		if ms2[i] != ms[i] {
			t.Fatalf("second pass changed cell %d: %+v vs %+v", i, ms2[i], ms[i])
		}
	}
	snap2 := coord.Counters().Snapshot()
	if snap2.ConfigsCompleted != snap.ConfigsCompleted {
		t.Fatalf("second pass re-completed cells: %d -> %d", snap.ConfigsCompleted, snap2.ConfigsCompleted)
	}
	if snap2.ConfigsCached != before+uint64(len(configs)) {
		t.Fatalf("second pass cached %d cells, want %d", snap2.ConfigsCached-before, len(configs))
	}

	f.stopAll()
	if err := coord.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	assertByteIdentity(t, coord, dir, tr, o, refCSV, refBPC)
}

// TestWorkStealing drives the coordinator directly as a single greedy
// worker: chunks routed to an idle peer must come off that peer's
// queue tail as steals.
func TestWorkStealing(t *testing.T) {
	coord := NewCoordinator(Config{ChunkCells: 1})
	defer coord.Stop()
	ctx := runCtx(t)
	if err := coord.Join(ctx, "a"); err != nil {
		t.Fatalf("Join a: %v", err)
	}
	if err := coord.Join(ctx, "b"); err != nil {
		t.Fatalf("Join b: %v", err)
	}

	configs := sweep.Configs(sweep.Options{Scheme: core.SchemeGShare, Tiers: []int{4, 5, 6, 7, 8, 9}})
	d := testDigest(3)
	done := make(chan error, 1)
	go func() {
		_, err := coord.RunCells(ctx, d, 0, configs)
		done <- err
	}()

	// Only "b" ever pulls; "a" is registered but idle, so its share of
	// the ring's chunks is only reachable by stealing.
	settled := 0
	for settled < len(configs) {
		w, err := coord.Next(ctx, "b")
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if w.Chunk == nil {
			continue
		}
		res := ChunkResult{Chunk: w.Chunk.ID, Trace: w.Chunk.Trace, Warmup: w.Chunk.Warmup}
		for _, cfg := range w.Chunk.Configs {
			res.Cells = append(res.Cells, fakeCell(cfg.Fingerprint()))
		}
		if err := coord.Complete(ctx, "b", res); err != nil {
			t.Fatalf("Complete: %v", err)
		}
		settled += len(w.Chunk.Configs)
	}
	if err := <-done; err != nil {
		t.Fatalf("RunCells: %v", err)
	}
	st := coord.Stats()
	if st.Steals == 0 {
		t.Fatal("idle peer's chunks were drained without a single steal")
	}
	if st.ChunksDispatched != uint64(len(configs)) {
		t.Fatalf("ChunksDispatched = %d, want %d (ChunkCells=1, no requeues)", st.ChunksDispatched, len(configs))
	}
}

func TestLeaseExpiryRequeues(t *testing.T) {
	coord := NewCoordinator(Config{ChunkCells: 100, LeaseTimeout: 50 * time.Millisecond})
	defer coord.Stop()
	ctx := runCtx(t)
	if err := coord.Join(ctx, "w1"); err != nil {
		t.Fatalf("Join: %v", err)
	}

	configs := sweep.Configs(sweep.Options{Scheme: core.SchemeGShare, Tiers: []int{6}})
	d := testDigest(4)
	done := make(chan error, 1)
	go func() {
		_, err := coord.RunCells(ctx, d, 0, configs)
		done <- err
	}()

	// Lease the single chunk and sit on it: the reaper must take it
	// back.
	w, err := coord.Next(ctx, "w1")
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if w.Chunk == nil {
		t.Fatal("Next returned no chunk")
	}
	first := w.Chunk.ID
	waitUntil(t, 30*time.Second, "lease to expire", func() bool {
		return coord.Stats().Requeues >= 1
	})

	// The reclaimed chunk is redelivered — same ID, same cells.
	w2, err := coord.Next(ctx, "w1")
	if err != nil {
		t.Fatalf("second Next: %v", err)
	}
	if w2.Chunk == nil || w2.Chunk.ID != first {
		t.Fatalf("redelivery = %+v, want chunk %d again", w2.Chunk, first)
	}
	res := ChunkResult{Chunk: first, Trace: w2.Chunk.Trace, Warmup: w2.Chunk.Warmup}
	for _, cfg := range w2.Chunk.Configs {
		res.Cells = append(res.Cells, fakeCell(cfg.Fingerprint()))
	}
	if err := coord.Complete(ctx, "w1", res); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("RunCells: %v", err)
	}
	if got := coord.Counters().Snapshot().ConfigsCompleted; got != uint64(len(configs)) {
		t.Fatalf("ConfigsCompleted = %d, want %d", got, len(configs))
	}
}

// TestChunkFailurePropagates covers the worker-side failure path: a
// worker that cannot fetch the trace reports the chunk failed, and
// every waiter sees the error instead of hanging.
func TestChunkFailurePropagates(t *testing.T) {
	coord := NewCoordinator(Config{ChunkCells: 100})
	defer coord.Stop()
	startFleet(t, coord, memTraces{}, []string{"w1"}, nil) // provider has no traces

	configs := sweep.Configs(sweep.Options{Scheme: core.SchemeGShare, Tiers: []int{4}})
	_, err := coord.RunCells(runCtx(t), testDigest(5), 0, configs)
	if err == nil {
		t.Fatal("RunCells succeeded with no trace available anywhere")
	}
	if !strings.Contains(err.Error(), "failed") {
		t.Fatalf("error %q does not name the failed chunk", err)
	}
	if got := coord.Counters().Snapshot().ConfigsCompleted; got != 0 {
		t.Fatalf("ConfigsCompleted = %d after a failed chunk, want 0", got)
	}
}

func TestShutdownErrors(t *testing.T) {
	coord := NewCoordinator(Config{})
	ctx := runCtx(t)
	if _, err := coord.Next(ctx, "ghost"); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("Next before Join: %v, want ErrUnknownWorker", err)
	}
	if err := coord.Join(ctx, ""); err == nil {
		t.Fatal("Join accepted an empty worker id")
	}
	if err := coord.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if err := coord.Join(ctx, "w"); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Join after Stop: %v, want ErrShutdown", err)
	}
	if _, err := coord.Next(ctx, "w"); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Next after Stop: %v, want ErrShutdown", err)
	}
	if err := coord.Complete(ctx, "w", ChunkResult{}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Complete after Stop: %v, want ErrShutdown", err)
	}
	cfgs := []core.Config{{Scheme: core.SchemeGShare, RowBits: 2, ColBits: 4}}
	if _, err := coord.RunCells(ctx, testDigest(6), 0, cfgs); !errors.Is(err, ErrShutdown) {
		t.Fatalf("RunCells after Stop: %v, want ErrShutdown", err)
	}
	if err := coord.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
}

// encodeBPT1 renders a trace back to its canonical wire form.
func encodeBPT1(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, tr.Name, tr.Instructions, uint64(tr.Len()))
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, b := range tr.Branches {
		if err := w.WriteBranch(b); err != nil {
			t.Fatalf("WriteBranch: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("closing trace writer: %v", err)
	}
	return buf.Bytes()
}

// memOpener serves encoded traces from memory (the HTTP handler's
// TraceOpener seam).
type memOpener map[string][]byte

func (m memOpener) Open(digest string) (io.ReadCloser, error) {
	b, ok := m[digest]
	if !ok {
		return nil, errors.New("memOpener: no such trace")
	}
	return io.NopCloser(bytes.NewReader(b)), nil
}

// TestHTTPTransportEndToEnd runs real workers against the coordinator
// through the full HTTP stack — long-poll dispatch, JSON chunk
// results, trace replication with digest verification — and holds the
// result to the same byte-identity bar as the in-process transport.
func TestHTTPTransportEndToEnd(t *testing.T) {
	tr := testTrace(t, 20000, 2)
	o := chaosSweepOpts()
	refCSV, refBPC := reference(t, tr, o)

	dir := t.TempDir()
	coord := NewCoordinator(Config{Dir: dir, ChunkCells: 3})
	d := tr.Digest()
	hexDigest := Key{Digest: d}.String()[:64]
	srv := httptest.NewServer(Handler(coord, memOpener{hexDigest: encodeBPT1(t, tr)}))
	defer srv.Close()

	wctx, wcancel := context.WithCancel(context.Background())
	var dones []chan struct{}
	for _, id := range []string{"h1", "h2"} {
		w := NewWorker(id,
			&HTTPClient{Base: srv.URL, PollWait: 2 * time.Second},
			&RemoteTraces{Base: srv.URL})
		w.RetryDelay = 2 * time.Millisecond
		done := make(chan struct{})
		dones = append(dones, done)
		go func() {
			defer close(done)
			_ = w.Run(wctx)
		}()
	}
	stopWorkers := func() {
		wcancel()
		for _, done := range dones {
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Error("HTTP worker did not exit")
			}
		}
	}
	defer stopWorkers()

	configs := sweep.Configs(o)
	ms, err := coord.RunCells(runCtx(t), d, uint64(o.Sim.Warmup), configs)
	if err != nil {
		t.Fatalf("RunCells over HTTP: %v", err)
	}
	for i := range ms {
		if ms[i].Name == "" {
			t.Fatalf("cell %d unsettled after HTTP run", i)
		}
	}
	if got := coord.Counters().Snapshot().ConfigsCompleted; got != uint64(len(configs)) {
		t.Fatalf("ConfigsCompleted = %d, want %d", got, len(configs))
	}

	stopWorkers()
	if err := coord.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	assertByteIdentity(t, coord, dir, tr, o, refCSV, refBPC)
}
