package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count each worker projects onto
// the hash ring. 64 points per node keeps the largest/smallest
// ownership arc within a few percent for small fleets while the
// rebuild cost on membership change stays trivial.
const DefaultVnodes = 64

// Ring is a consistent-hash ring mapping cell keys onto worker
// nodes. Each node projects vnodes points onto a 64-bit FNV-1a
// circle; a key belongs to the node whose first point lies at or
// after the key's hash (wrapping at the top). Virtual nodes smooth
// the split so a sweep's cells spread roughly evenly, and adding or
// removing one node only moves the arcs adjacent to its points —
// the property that keeps a worker's warm replica cache mostly valid
// across membership churn.
//
// Ring is not goroutine-safe; the Coordinator guards it with its own
// mutex.
type Ring struct {
	vnodes int
	nodes  map[string]bool
	points []ringPoint // sorted by (hash, node)
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds an empty ring with the given virtual-node count per
// node (<= 0 selects DefaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
}

// hash64 hashes a string onto the ring circle. Raw FNV-1a has badly
// correlated high bits on the short, near-identical strings vnode
// labels are ("w2#0" .. "w2#63" can land on 3% of the circle), and
// ownership is decided by high-bit order — so the FNV output goes
// through a 64-bit avalanche finalizer to spread the arcs.
func hash64(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Add inserts a node (idempotent).
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: hash64(node + "#" + strconv.Itoa(i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// Remove deletes a node and its points (idempotent).
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Owner returns the node owning key; ok is false when the ring is
// empty.
func (r *Ring) Owner(key string) (node string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node, true
}

// Len returns the number of nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the node names, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
