package cluster

import (
	"encoding/hex"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"

	"bpred/internal/checkpoint"
)

// Key identifies one sweep cell fleet-wide: the (trace digest,
// warmup, configuration fingerprint) triple that also keys the BPC1
// checkpoint cache. Key.String is the canonical wire form and is
// byte-identical to the service layer's single-flight cell key, so a
// cell claimed in-process and a cell routed across the cluster share
// one identity.
type Key struct {
	Digest      [32]byte
	Warmup      uint64
	Fingerprint string
}

// String renders the canonical form:
// <64 lowercase hex digits>|<minimal decimal warmup>|<fingerprint>.
// The fingerprint may itself contain '|' separators (core.Config
// fingerprints do), so decoding splits on the first two separators
// only.
func (k Key) String() string {
	return fmt.Sprintf("%x|%d|%s", k.Digest[:], k.Warmup, k.Fingerprint)
}

// ParseKey inverts String. Only the canonical form is accepted —
// lowercase hex, minimal decimal, non-empty fingerprint — so both
// round-trip laws hold: ParseKey(k.String()) == k for every Key with
// a non-empty fingerprint, and ParseKey(s).String() == s whenever
// ParseKey accepts s.
func ParseKey(s string) (Key, error) {
	var k Key
	dig, rest, ok := strings.Cut(s, "|")
	if !ok {
		return k, fmt.Errorf("cluster: key %q: missing digest separator", s)
	}
	if len(dig) != 2*len(k.Digest) || strings.ToLower(dig) != dig {
		return k, fmt.Errorf("cluster: key %q: digest must be %d lowercase hex digits", s, 2*len(k.Digest))
	}
	raw, err := hex.DecodeString(dig)
	if err != nil {
		return k, fmt.Errorf("cluster: key %q: %v", s, err)
	}
	copy(k.Digest[:], raw)
	w, fp, ok := strings.Cut(rest, "|")
	if !ok {
		return k, fmt.Errorf("cluster: key %q: missing warmup separator", s)
	}
	k.Warmup, err = strconv.ParseUint(w, 10, 64)
	if err != nil {
		return k, fmt.Errorf("cluster: key %q: bad warmup: %v", s, err)
	}
	if strconv.FormatUint(k.Warmup, 10) != w {
		return k, fmt.Errorf("cluster: key %q: non-canonical warmup %q", s, w)
	}
	if fp == "" {
		return k, fmt.Errorf("cluster: key %q: empty fingerprint", s)
	}
	k.Fingerprint = fp
	return k, nil
}

// CheckpointFile returns the base name of the BPC1 file that caches
// this key's cell, exactly as checkpoint.PathFor names it
// (sweep-<24-hex digest prefix>-w<warmup>.bpc). The name is derived
// through PathFor itself, so the cluster and the checkpoint layer
// agree by construction.
func (k Key) CheckpointFile() string {
	return filepath.Base(checkpoint.PathFor(".", k.Digest, k.Warmup))
}

// CheckpointFileFor names the BPC1 file for a digest prefix alone.
// PathFor consumes only the first 12 digest bytes, so padding the
// prefix out with zeros reproduces its naming exactly.
func CheckpointFileFor(prefix [12]byte, warmup uint64) string {
	var digest [32]byte
	copy(digest[:], prefix[:])
	return filepath.Base(checkpoint.PathFor(".", digest, warmup))
}

// ParseCheckpointFile inverts CheckpointFile up to the information
// the name carries: the 12-byte digest prefix and the warmup. Only
// canonical names are accepted, so
// CheckpointFileFor(ParseCheckpointFile(name)) == name whenever it
// accepts.
func ParseCheckpointFile(name string) (prefix [12]byte, warmup uint64, err error) {
	rest, ok := strings.CutPrefix(name, "sweep-")
	if !ok {
		return prefix, 0, fmt.Errorf("cluster: checkpoint name %q: missing sweep- prefix", name)
	}
	rest, ok = strings.CutSuffix(rest, ".bpc")
	if !ok {
		return prefix, 0, fmt.Errorf("cluster: checkpoint name %q: missing .bpc suffix", name)
	}
	// Hex digits never contain '-', so the first "-w" is the
	// separator for every well-formed name.
	hexPart, wPart, ok := strings.Cut(rest, "-w")
	if !ok {
		return prefix, 0, fmt.Errorf("cluster: checkpoint name %q: missing -w separator", name)
	}
	if len(hexPart) != 2*len(prefix) || strings.ToLower(hexPart) != hexPart {
		return prefix, 0, fmt.Errorf("cluster: checkpoint name %q: digest prefix must be %d lowercase hex digits", name, 2*len(prefix))
	}
	raw, err := hex.DecodeString(hexPart)
	if err != nil {
		return prefix, 0, fmt.Errorf("cluster: checkpoint name %q: %v", name, err)
	}
	copy(prefix[:], raw)
	warmup, err = strconv.ParseUint(wPart, 10, 64)
	if err != nil {
		return prefix, 0, fmt.Errorf("cluster: checkpoint name %q: bad warmup: %v", name, err)
	}
	if strconv.FormatUint(warmup, 10) != wPart {
		return prefix, 0, fmt.Errorf("cluster: checkpoint name %q: non-canonical warmup %q", name, wPart)
	}
	return prefix, warmup, nil
}

// parseDigest decodes a full hex trace digest.
func parseDigest(hexDigest string) ([32]byte, error) {
	var d [32]byte
	raw, err := hex.DecodeString(hexDigest)
	if err != nil || len(raw) != len(d) {
		return d, fmt.Errorf("cluster: bad trace digest %q", hexDigest)
	}
	copy(d[:], raw)
	return d, nil
}
