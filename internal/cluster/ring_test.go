package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	d := testDigest(9)
	for i := range keys {
		keys[i] = Key{Digest: d, Warmup: 64, Fingerprint: fmt.Sprintf("cfg1|s2|r%d|c%d", i%12, 4+i%10)}.String() + fmt.Sprint(i)
	}
	return keys
}

func TestRingDeterministic(t *testing.T) {
	build := func() *Ring {
		r := NewRing(0)
		r.Add("w2")
		r.Add("w1")
		r.Add("w3")
		return r
	}
	a, b := build(), build()
	for _, k := range ringKeys(200) {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("owner of %q differs between identical rings: %q vs %q", k, oa, ob)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Owner("anything"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if r.Len() != 0 || len(r.Nodes()) != 0 {
		t.Fatalf("empty ring: Len=%d Nodes=%v", r.Len(), r.Nodes())
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"w1", "w2", "w3"}
	for _, n := range nodes {
		r.Add(n)
	}
	counts := make(map[string]int)
	keys := ringKeys(600)
	for _, k := range keys {
		o, ok := r.Owner(k)
		if !ok {
			t.Fatal("no owner on a populated ring")
		}
		counts[o]++
	}
	for _, n := range nodes {
		// With 64 vnodes each node's arc share stays far from
		// degenerate; 10% of keys is a loose floor that only breaks
		// if vnode smoothing regresses badly.
		if counts[n] < len(keys)/10 {
			t.Fatalf("node %s owns only %d/%d keys: %v", n, counts[n], len(keys), counts)
		}
	}
}

func TestRingMinimalMovement(t *testing.T) {
	r := NewRing(0)
	r.Add("w1")
	r.Add("w2")
	keys := ringKeys(400)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}
	r.Add("w3")
	moved := 0
	for _, k := range keys {
		after, _ := r.Owner(k)
		if after == before[k] {
			continue
		}
		if after != "w3" {
			t.Fatalf("key %q moved %q -> %q, but only the new node may gain keys", k, before[k], after)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("adding a node moved no keys; the ring is not spreading load")
	}
	// Removing the node must restore the original assignment exactly.
	r.Remove("w3")
	for _, k := range keys {
		if got, _ := r.Owner(k); got != before[k] {
			t.Fatalf("after remove, key %q owned by %q, want %q", k, got, before[k])
		}
	}
}

func TestRingAddRemoveIdempotent(t *testing.T) {
	r := NewRing(8)
	r.Add("w1")
	r.Add("w1")
	if r.Len() != 1 || len(r.points) != 8 {
		t.Fatalf("double add: Len=%d points=%d", r.Len(), len(r.points))
	}
	r.Remove("w1")
	r.Remove("w1")
	if r.Len() != 0 || len(r.points) != 0 {
		t.Fatalf("double remove: Len=%d points=%d", r.Len(), len(r.points))
	}
	r.Add("w2")
	r.Add("w1")
	if got := r.Nodes(); len(got) != 2 || got[0] != "w1" || got[1] != "w2" {
		t.Fatalf("Nodes() = %v, want sorted [w1 w2]", got)
	}
}
