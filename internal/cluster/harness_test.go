package cluster

// The failure-injection harness. Workers talk to the coordinator
// through chaosLink, a CoordinatorClient wrapper that can partition
// the connection, duplicate completions, drop or hold replication
// traffic, kill the worker at a chosen completion, and be re-pointed
// at a different coordinator (a "restart"). Scenarios in
// chaos_test.go compose these faults and then hold the cluster to the
// byte-identity bar against a single-node run.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"bpred/internal/checkpoint"
	"bpred/internal/core"
	"bpred/internal/obs"
	"bpred/internal/sim"
	"bpred/internal/sweep"
	"bpred/internal/trace"
	"bpred/internal/workload"
)

// testTrace builds a small deterministic workload trace.
func testTrace(t *testing.T, n int, seed uint64) *trace.Trace {
	t.Helper()
	p, ok := workload.ProfileByName("espresso")
	if !ok {
		p = workload.Profiles()[0]
	}
	return workload.Generate(p, seed, n)
}

// memTraces is an in-memory TraceProvider.
type memTraces map[string]*trace.Trace

func (m memTraces) Trace(ctx context.Context, digest string) (*trace.Trace, error) {
	tr, ok := m[digest]
	if !ok {
		return nil, errors.New("memTraces: no such trace")
	}
	return tr, nil
}

func tracesFor(trs ...*trace.Trace) memTraces {
	m := make(memTraces, len(trs))
	for _, tr := range trs {
		d := tr.Digest()
		m[fmt.Sprintf("%x", d[:])] = tr
	}
	return m
}

// chaosSweepOpts is the scenario workload: a gshare slice of the
// Figure-4 grid (45 cells over six tiers), metered so the alias
// taxonomy rides through the wire types too, with a non-zero warmup
// so the warmup leg of the cell key is exercised.
func chaosSweepOpts() sweep.Options {
	return sweep.Options{
		Scheme:  core.SchemeGShare,
		Tiers:   []int{4, 5, 6, 7, 8, 9},
		Metered: true,
		Sim:     sim.Options{Warmup: 64},
	}
}

// reference runs the sweep single-node with a file-backed checkpoint
// and returns the Surface CSV bytes and the BPC1 file bytes — the
// byte-identity baseline every scenario must reproduce.
func reference(t *testing.T, tr *trace.Trace, o sweep.Options) (csv, bpc []byte) {
	t.Helper()
	dir := t.TempDir()
	o.CheckpointDir = dir
	surf, err := sweep.RunCtx(context.Background(), o, tr)
	if err != nil {
		t.Fatalf("single-node reference sweep: %v", err)
	}
	var buf bytes.Buffer
	if err := surf.WriteCSV(&buf); err != nil {
		t.Fatalf("reference WriteCSV: %v", err)
	}
	bpc, err = os.ReadFile(checkpoint.PathFor(dir, tr.Digest(), uint64(o.Sim.Warmup)))
	if err != nil {
		t.Fatalf("reading reference checkpoint: %v", err)
	}
	return buf.Bytes(), bpc
}

// assertByteIdentity proves the cluster run reproduced the
// single-node artifacts bit for bit: the coordinator's BPC1 ledger
// file equals the reference file, and a Surface assembled purely from
// the ledger (zero new simulations, proven via obs) writes the same
// CSV. clusterDir is the coordinator's Config.Dir.
func assertByteIdentity(t *testing.T, c *Coordinator, clusterDir string, tr *trace.Trace, o sweep.Options, refCSV, refBPC []byte) {
	t.Helper()
	digest := tr.Digest()
	gotBPC, err := os.ReadFile(checkpoint.PathFor(clusterDir, digest, uint64(o.Sim.Warmup)))
	if err != nil {
		t.Fatalf("reading cluster checkpoint: %v", err)
	}
	if !bytes.Equal(gotBPC, refBPC) {
		t.Fatalf("cluster BPC1 file differs from single-node (%d vs %d bytes)", len(gotBPC), len(refBPC))
	}
	store, err := c.StoreFor(digest, uint64(o.Sim.Warmup))
	if err != nil {
		t.Fatalf("StoreFor: %v", err)
	}
	var cnt obs.Counters
	ao := o
	ao.Checkpoint = store
	ao.Sim.Obs = &cnt
	surf, err := sweep.RunCtx(context.Background(), ao, tr)
	if err != nil {
		t.Fatalf("assembling Surface from ledger: %v", err)
	}
	snap := cnt.Snapshot()
	if snap.ConfigsCompleted != 0 {
		t.Fatalf("Surface assembly simulated %d cells; the ledger should have had every cell", snap.ConfigsCompleted)
	}
	if snap.ConfigsCached == 0 {
		t.Fatal("Surface assembly cached no cells; the ledger is empty")
	}
	var buf bytes.Buffer
	if err := surf.WriteCSV(&buf); err != nil {
		t.Fatalf("cluster WriteCSV: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), refCSV) {
		t.Fatalf("cluster Surface CSV differs from single-node:\n--- cluster ---\n%s\n--- single-node ---\n%s", buf.Bytes(), refCSV)
	}
}

// errPartitioned simulates a severed connection.
var errPartitioned = errors.New("chaos: partitioned")

// chaosLink wraps the in-process transport with injectable faults.
type chaosLink struct {
	mu           sync.Mutex
	coord        *Coordinator // swappable: a coordinator "restart"
	partitioned  bool
	dupComplete  bool
	dropReplicas bool
	holdReplicas bool          // stash replicas instead of delivering
	stash        []ReplicaCell // released on the first un-held Next
	holdComplete bool          // capture completions in flight instead of delivering
	held         []ChunkResult // captured completions, releasable to any coordinator
	killOn       int           // 1-based Complete call that kills the worker (0 = never)
	completes    int
	kill         func() // cancels the worker's ctx; must not block
}

func (l *chaosLink) heldCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.held)
}

// takeHeld surrenders the captured in-flight completions to the
// caller (which typically replays them against a restarted
// coordinator, simulating deliveries that raced the restart).
func (l *chaosLink) takeHeld() []ChunkResult {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := l.held
	l.held = nil
	return out
}

func (l *chaosLink) target() (*Coordinator, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.coord, l.partitioned
}

func (l *chaosLink) setCoord(c *Coordinator) {
	l.mu.Lock()
	l.coord = c
	l.mu.Unlock()
}

func (l *chaosLink) setPartitioned(p bool) {
	l.mu.Lock()
	l.partitioned = p
	l.mu.Unlock()
}

func (l *chaosLink) Join(ctx context.Context, id string) error {
	c, cut := l.target()
	if cut {
		return errPartitioned
	}
	return c.Join(ctx, id)
}

func (l *chaosLink) Next(ctx context.Context, id string) (Work, error) {
	c, cut := l.target()
	if cut {
		return Work{}, errPartitioned
	}
	w, err := c.Next(ctx, id)
	if err != nil {
		return w, err
	}
	l.mu.Lock()
	switch {
	case l.dropReplicas:
		w.Replicas = nil
	case l.holdReplicas:
		l.stash = append(l.stash, w.Replicas...)
		w.Replicas = nil
	case len(l.stash) > 0: // delayed delivery
		w.Replicas = append(l.stash, w.Replicas...)
		l.stash = nil
	}
	l.mu.Unlock()
	return w, nil
}

func (l *chaosLink) Complete(ctx context.Context, id string, res ChunkResult) error {
	l.mu.Lock()
	c, cut := l.coord, l.partitioned
	if cut {
		l.mu.Unlock()
		return errPartitioned
	}
	l.completes++
	if l.holdComplete {
		// The completion is computed but never leaves the node — it is
		// "in flight" until the scenario releases it, possibly to a
		// different coordinator incarnation.
		l.held = append(l.held, res)
		l.mu.Unlock()
		return nil
	}
	kill := l.killOn > 0 && l.completes == l.killOn
	dup := l.dupComplete
	killFn := l.kill
	l.mu.Unlock()
	if kill {
		// The worker dies before the completion leaves the node: the
		// chunk's results are lost with it.
		if killFn != nil {
			killFn()
		}
		return errPartitioned
	}
	if err := c.Complete(ctx, id, res); err != nil {
		return err
	}
	if dup {
		// Exactly the duplicated-delivery failure: the same result
		// arrives twice (retry after a lost ack).
		return c.Complete(ctx, id, res)
	}
	return nil
}

// fleet runs N Workers against one coordinator through chaosLinks.
type fleet struct {
	t       *testing.T
	links   map[string]*chaosLink
	workers map[string]*Worker
	cancels map[string]context.CancelFunc
	done    map[string]chan struct{} // closed when the worker's Run returns
	stopped bool
}

// startFleet launches workers ids against coord. mutate, when
// non-nil, customizes each worker's link and hooks before it starts.
func startFleet(t *testing.T, coord *Coordinator, traces TraceProvider, ids []string, mutate func(id string, l *chaosLink, w *Worker)) *fleet {
	t.Helper()
	f := &fleet{
		t:       t,
		links:   make(map[string]*chaosLink),
		workers: make(map[string]*Worker),
		cancels: make(map[string]context.CancelFunc),
		done:    make(map[string]chan struct{}),
	}
	for _, id := range ids {
		id := id
		l := &chaosLink{coord: coord}
		w := NewWorker(id, l, traces)
		w.RetryDelay = 2 * time.Millisecond
		ctx, cancel := context.WithCancel(context.Background())
		l.kill = cancel
		if mutate != nil {
			mutate(id, l, w)
		}
		// Pre-register so fleet membership doesn't depend on goroutine
		// scheduling: on one core a single worker can otherwise finish
		// an entire sweep before its peers' goroutines first run, and
		// replication only fans out to workers known at completion
		// time. The worker's own Join is idempotent on top of this.
		if err := coord.Join(context.Background(), id); err != nil {
			t.Fatalf("pre-registering %s: %v", id, err)
		}
		f.links[id] = l
		f.workers[id] = w
		f.cancels[id] = cancel
		done := make(chan struct{})
		f.done[id] = done
		go func() {
			defer close(done)
			_ = w.Run(ctx)
			// A dead worker's leases go back to the queue; on the
			// current coordinator, like a liveness prober would.
			if c, cut := l.target(); !cut {
				c.WorkerLeave(id)
			}
		}()
	}
	t.Cleanup(f.stopAll)
	return f
}

// kill cancels one worker and waits for it to exit; its leases are
// re-queued by the exit path in startFleet.
func (f *fleet) kill(id string) {
	f.cancels[id]()
	select {
	case <-f.done[id]:
	case <-time.After(30 * time.Second):
		f.t.Fatalf("worker %s did not exit after kill", id)
	}
}

// waitDead waits for a worker to die of its injected fault (without
// canceling it), including the WorkerLeave in its exit path.
func (f *fleet) waitDead(id string) {
	f.t.Helper()
	select {
	case <-f.done[id]:
	case <-time.After(60 * time.Second):
		f.t.Fatalf("worker %s did not die of its injected fault", id)
	}
}

func (f *fleet) stopAll() {
	if f.stopped {
		return
	}
	f.stopped = true
	for id := range f.cancels {
		f.cancels[id]()
	}
	for id, done := range f.done {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			f.t.Errorf("worker %s did not exit at cleanup", id)
		}
	}
}

func (f *fleet) partitionAll(p bool) {
	for _, l := range f.links {
		l.setPartitioned(p)
	}
}

func (f *fleet) swapCoordinator(c *Coordinator) {
	for _, l := range f.links {
		l.setCoord(c)
	}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
