package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"bpred/internal/checkpoint"
	"bpred/internal/core"
	"bpred/internal/obs"
	"bpred/internal/sim"
)

// WorkerStats counts worker-side events.
type WorkerStats struct {
	// ChunksRun counts chunks executed to completion.
	ChunksRun uint64
	// CellsComputed counts cells this worker's kernels evaluated.
	CellsComputed uint64
	// CellsLocal counts chunk cells answered from the local replica
	// cache without simulation.
	CellsLocal uint64
	// ReplicasInstalled counts replica cells installed from
	// coordinator pushes.
	ReplicasInstalled uint64
}

// Worker pulls chunks from a coordinator, runs the simulation
// kernels, and reports results. Per-(trace, warmup) in-memory BPC1
// stores — warmed by piggybacked replication — let it answer a chunk
// whose cells were already settled elsewhere without re-simulating.
type Worker struct {
	id     string
	client CoordinatorClient
	traces TraceProvider

	// SimTemplate seeds each chunk's sim.Options (kernel selection,
	// batch sizing); Warmup and Obs are bound per chunk.
	SimTemplate sim.Options
	// RetryDelay backs off transport errors (default 50ms). All
	// transport errors — including coordinator shutdown — are
	// retried, because a partitioned or restarted coordinator may
	// come back behind the same client; canceling ctx is the only way
	// to stop a worker.
	RetryDelay time.Duration

	mu     sync.Mutex
	stores map[string]*checkpoint.Store //bplint:guardedby mu // "digest|warmup" -> replica cache
	stats  WorkerStats                  //bplint:guardedby mu

	// hookChunk, when set, runs before each chunk executes; the chaos
	// harness uses it to kill a worker mid-chunk at a deterministic
	// point.
	hookChunk func(ctx context.Context, ch *Chunk)
}

// NewWorker builds a worker. id must be unique within the fleet; it
// is the worker's ring identity.
func NewWorker(id string, client CoordinatorClient, traces TraceProvider) *Worker {
	return &Worker{
		id:     id,
		client: client,
		traces: traces,
		stores: make(map[string]*checkpoint.Store),
	}
}

// ID returns the worker's fleet identity.
func (w *Worker) ID() string { return w.id }

// Stats returns a snapshot of the worker's counters.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Run joins the coordinator and serves chunks until ctx ends; it
// returns ctx's error (a worker has no other way to finish). A chunk
// interrupted by the cancellation is dropped unreported — the
// coordinator re-queues it via WorkerLeave or lease expiry.
func (w *Worker) Run(ctx context.Context) error {
	joined := false
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !joined {
			if err := w.client.Join(ctx, w.id); err != nil {
				w.sleep(ctx)
				continue
			}
			joined = true
		}
		work, err := w.client.Next(ctx, w.id)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, ErrUnknownWorker) {
				joined = false // coordinator restarted: re-register
				continue
			}
			w.sleep(ctx)
			continue
		}
		w.install(work.Replicas)
		if work.Chunk == nil {
			continue
		}
		res := w.execute(ctx, work.Chunk)
		if res == nil { // canceled mid-chunk
			return ctx.Err()
		}
		for {
			if err := w.client.Complete(ctx, w.id, *res); err == nil {
				break
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.sleep(ctx)
		}
	}
}

func (w *Worker) sleep(ctx context.Context) {
	d := w.RetryDelay
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	select {
	case <-ctx.Done():
	case <-time.After(d):
	}
}

// execute runs one chunk: cells present in the local replica cache
// are answered directly, the rest go through sim.RunConfigsCtx in one
// call (so the fused config-parallel kernels see the whole slab). It
// returns nil when ctx was canceled mid-chunk — the partial work is
// dropped and the chunk stays the coordinator's to re-queue.
func (w *Worker) execute(ctx context.Context, ch *Chunk) *ChunkResult {
	if w.hookChunk != nil {
		w.hookChunk(ctx, ch)
	}
	res := &ChunkResult{Chunk: ch.ID, Trace: ch.Trace, Warmup: ch.Warmup}
	fail := func(err error) *ChunkResult {
		res.Err = err.Error()
		res.Failed = res.Failed[:0]
		for _, cfg := range ch.Configs {
			res.Failed = append(res.Failed, cfg.Fingerprint())
		}
		return res
	}
	store, err := w.storeFor(ch.Trace, ch.Warmup)
	if err != nil {
		return fail(err)
	}
	var missing []core.Config
	local := 0
	for _, cfg := range ch.Configs {
		fp := cfg.Fingerprint()
		if m, ok := store.Lookup(fp); ok {
			res.Cells = append(res.Cells, CellResult{Fingerprint: fp, Metrics: m})
			local++
			continue
		}
		missing = append(missing, cfg)
	}
	computed := 0
	if len(missing) > 0 {
		tr, err := w.traces.Trace(ctx, ch.Trace)
		if err != nil {
			return fail(fmt.Errorf("cluster: worker %s: trace %s: %w", w.id, ch.Trace, err))
		}
		opt := w.SimTemplate
		var cnt obs.Counters
		opt.Warmup = int(ch.Warmup)
		opt.Obs = &cnt
		ms, err := sim.RunConfigsCtx(ctx, missing, tr, opt)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fail(err)
		}
		for i, cfg := range missing {
			fp := cfg.Fingerprint()
			store.Add(fp, ms[i])
			res.Cells = append(res.Cells, CellResult{Fingerprint: fp, Metrics: ms[i]})
		}
		computed = len(missing)
		res.Progress = cnt.Snapshot()
	}
	w.mu.Lock()
	w.stats.ChunksRun++
	w.stats.CellsLocal += uint64(local)
	w.stats.CellsComputed += uint64(computed)
	w.mu.Unlock()
	return res
}

// install folds pushed replicas into the local caches.
func (w *Worker) install(reps []ReplicaCell) {
	for _, r := range reps {
		store, err := w.storeFor(r.Trace, r.Warmup)
		if err != nil {
			continue // malformed push; replication is best-effort
		}
		if _, ok := store.Lookup(r.Fingerprint); ok {
			continue
		}
		store.Add(r.Fingerprint, r.Metrics)
		w.mu.Lock()
		w.stats.ReplicasInstalled++
		w.mu.Unlock()
	}
}

// storeFor returns the in-memory replica cache for one (trace,
// warmup) binding.
func (w *Worker) storeFor(hexDigest string, warmup uint64) (*checkpoint.Store, error) {
	digest, err := parseDigest(hexDigest)
	if err != nil {
		return nil, err
	}
	key := hexDigest + "|" + fmt.Sprint(warmup)
	w.mu.Lock()
	defer w.mu.Unlock()
	if s, ok := w.stores[key]; ok {
		return s, nil
	}
	s := checkpoint.NewMemory(digest, warmup)
	w.stores[key] = s
	return s, nil
}
