package cluster

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"bpred/internal/trace"
)

// The HTTP transport keeps workers pull-only: the coordinator exposes
// Handler (cmd/bpserved mounts it under /cluster/v1/), workers dial
// in with HTTPClient + RemoteTraces, and Next long-polls so no
// inbound connectivity to workers is ever needed.

// TraceOpener serves raw BPT1 bytes so workers can replicate traces;
// the service's TraceStore satisfies it.
type TraceOpener interface {
	Open(digest string) (io.ReadCloser, error)
}

// nextRequest is the wire form of a Next long-poll.
type nextRequest struct {
	Worker string `json:"worker"`
	WaitMS int64  `json:"wait_ms,omitempty"`
}

// completeRequest is the wire form of a Complete delivery.
type completeRequest struct {
	Worker string      `json:"worker"`
	Result ChunkResult `json:"result"`
}

// maxPollWait caps a single long-poll so dead clients release their
// handler goroutines.
const maxPollWait = time.Minute

// Handler exposes a Coordinator over HTTP:
//
//	POST /join              {"worker": id}
//	POST /next              {"worker": id, "wait_ms": n} -> Work (empty on poll timeout)
//	POST /complete          {"worker": id, "result": ChunkResult}
//	GET  /trace/{digest}    raw BPT1 stream
//
// Coordinator errors map onto statuses the client folds back into
// sentinel errors: 404 -> ErrUnknownWorker, 503 -> ErrShutdown.
//
// Handler is the open (trusted-network) transport. AuthHandler wraps
// it with a shared fleet token for deployments whose cluster port is
// reachable by tenants — without it, anyone who can reach the port
// can pull any trace by digest and inject completions.
func Handler(c *Coordinator, traces TraceOpener) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /join", func(w http.ResponseWriter, r *http.Request) {
		var req nextRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
			httpError(w, http.StatusBadRequest, "bad join request")
			return
		}
		if err := c.Join(r.Context(), req.Worker); err != nil {
			coordError(w, err)
			return
		}
		writeJSON(w, struct{}{})
	})
	mux.HandleFunc("POST /next", func(w http.ResponseWriter, r *http.Request) {
		var req nextRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
			httpError(w, http.StatusBadRequest, "bad next request")
			return
		}
		wait := time.Duration(req.WaitMS) * time.Millisecond
		if wait <= 0 || wait > maxPollWait {
			wait = maxPollWait
		}
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		defer cancel()
		work, err := c.Next(ctx, req.Worker)
		if err != nil {
			if ctx.Err() != nil && r.Context().Err() == nil {
				writeJSON(w, Work{}) // poll timeout: empty work, client re-polls
				return
			}
			coordError(w, err)
			return
		}
		writeJSON(w, work)
	})
	mux.HandleFunc("POST /complete", func(w http.ResponseWriter, r *http.Request) {
		var req completeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
			httpError(w, http.StatusBadRequest, "bad complete request")
			return
		}
		if err := c.Complete(r.Context(), req.Worker, req.Result); err != nil {
			coordError(w, err)
			return
		}
		writeJSON(w, struct{}{})
	})
	mux.HandleFunc("GET /trace/{digest}", func(w http.ResponseWriter, r *http.Request) {
		if traces == nil {
			httpError(w, http.StatusNotFound, "no trace source")
			return
		}
		rc, err := traces.Open(r.PathValue("digest"))
		if err != nil {
			httpError(w, http.StatusNotFound, "no such trace")
			return
		}
		defer rc.Close()
		w.Header().Set("Content-Type", "application/octet-stream")
		if _, err := io.Copy(w, rc); err != nil {
			return // client went away mid-stream; nothing to salvage
		}
	})
	return mux
}

// AuthHandler wraps Handler with a shared bearer token: every request
// must carry "Authorization: Bearer <token>" (constant-time compared)
// or gets 401. An empty token returns the open Handler unchanged.
// HTTPClient.Token and RemoteTraces.Token present the token.
func AuthHandler(c *Coordinator, traces TraceOpener, token string) http.Handler {
	inner := Handler(c, traces)
	if token == "" {
		return inner
	}
	want := []byte(token)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(got), want) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="bpcluster"`)
			httpError(w, http.StatusUnauthorized, "missing or bad cluster token")
			return
		}
		inner.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return // headers already sent; the client sees the truncation
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(map[string]string{"error": msg}); err != nil {
		return
	}
}

func coordError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownWorker):
		httpError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, ErrShutdown):
		httpError(w, http.StatusServiceUnavailable, err.Error())
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

// HTTPClient implements CoordinatorClient against a coordinator's
// mounted Handler.
type HTTPClient struct {
	// Base is the coordinator's cluster API prefix, e.g.
	// "http://host:8149/cluster/v1".
	Base string
	// HTTP is the client to use (default: a fresh http.Client; no
	// overall timeout, because Next long-polls).
	HTTP *http.Client
	// PollWait is the long-poll budget sent with Next (default 25s).
	PollWait time.Duration
	// Token, when non-empty, is sent as a bearer token with every
	// request (AuthHandler deployments).
	Token string
}

func (h *HTTPClient) client() *http.Client {
	if h.HTTP != nil {
		return h.HTTP
	}
	return http.DefaultClient
}

// Join implements CoordinatorClient.
func (h *HTTPClient) Join(ctx context.Context, workerID string) error {
	return h.post(ctx, "/join", nextRequest{Worker: workerID}, nil)
}

// Next implements CoordinatorClient. A server-side poll timeout
// yields an empty Work, which the worker loop treats as "ask again".
func (h *HTTPClient) Next(ctx context.Context, workerID string) (Work, error) {
	wait := h.PollWait
	if wait <= 0 {
		wait = 25 * time.Second
	}
	var work Work
	err := h.post(ctx, "/next", nextRequest{Worker: workerID, WaitMS: wait.Milliseconds()}, &work)
	return work, err
}

// Complete implements CoordinatorClient.
func (h *HTTPClient) Complete(ctx context.Context, workerID string, res ChunkResult) error {
	return h.post(ctx, "/complete", completeRequest{Worker: workerID, Result: res}, nil)
}

func (h *HTTPClient) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("cluster: encoding %s request: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.Base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if h.Token != "" {
		req.Header.Set("Authorization", "Bearer "+h.Token)
	}
	resp, err := h.client().Do(req)
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", path, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		if out == nil {
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(out)
	case http.StatusNotFound:
		return ErrUnknownWorker
	case http.StatusServiceUnavailable:
		return ErrShutdown
	case http.StatusUnauthorized:
		return fmt.Errorf("cluster: %s: coordinator rejected the cluster token", path)
	default:
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: %s: %s: %s", path, resp.Status, bytes.TrimSpace(b))
	}
}

// RemoteTraces fetches traces from the coordinator's /trace endpoint,
// verifies the content digest, and caches the decoded trace for the
// process lifetime (a worker replays the same trace for every chunk
// of a sweep).
type RemoteTraces struct {
	// Base is the coordinator's cluster API prefix.
	Base string
	// HTTP is the client to use (default http.DefaultClient).
	HTTP *http.Client
	// Token is the shared fleet bearer token (AuthHandler
	// deployments); empty sends no credentials.
	Token string

	mu    sync.Mutex
	cache map[string]*trace.Trace //bplint:guardedby mu
}

// Trace implements TraceProvider. ctx cancels the download and the
// block-by-block decode mid-replication.
func (p *RemoteTraces) Trace(ctx context.Context, digest string) (*trace.Trace, error) {
	p.mu.Lock()
	if t, ok := p.cache[digest]; ok {
		p.mu.Unlock()
		return t, nil
	}
	p.mu.Unlock()

	client := p.HTTP
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.Base+"/trace/"+digest, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetching trace %s: %w", digest, err)
	}
	if p.Token != "" {
		req.Header.Set("Authorization", "Bearer "+p.Token)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetching trace %s: %w", digest, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: fetching trace %s: %s", digest, resp.Status)
	}
	// The versioned reader sniffs the magic, so replication works for
	// both wire formats; batch decoding keeps the per-record interface
	// overhead off the transfer path.
	rd, err := trace.NewReader(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cluster: decoding trace %s: %w", digest, err)
	}
	tr := &trace.Trace{Name: rd.Name(), Instructions: rd.Instructions()}
	if n := rd.Count(); n > 0 {
		tr.Branches = make([]trace.Branch, 0, n)
	}
	buf := make([]trace.Branch, 4096)
	for {
		batch := rd.NextBatch(buf)
		if len(batch) == 0 {
			break
		}
		tr.Branches = append(tr.Branches, batch...)
	}
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("cluster: decoding trace %s: %w", digest, err)
	}
	got := tr.Digest()
	if hex.EncodeToString(got[:]) != digest {
		return nil, fmt.Errorf("cluster: trace %s: content digest mismatch", digest)
	}
	p.mu.Lock()
	if p.cache == nil {
		p.cache = make(map[string]*trace.Trace)
	}
	p.cache[digest] = tr
	p.mu.Unlock()
	return tr, nil
}
