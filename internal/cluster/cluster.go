// Package cluster promotes the sweep service from a single process to
// a coordinator + N worker topology. Sweep cells — the (trace digest,
// warmup, config fingerprint) triples that key the BPC1 checkpoint
// cache — are consistent-hashed across the worker fleet, the service
// layer's cell-level single-flight is extended to cluster scope (a
// cell is accepted into the authoritative ledger exactly once,
// fleet-wide, no matter how many workers report it), and workers pull
// from per-node queues with work-stealing so one hot sweep saturates
// every core on every node.
//
// BPC1 checkpoints are the replication unit: the coordinator's
// per-(trace, warmup) Store is the ledger of settled cells, settled
// cells are pushed to workers piggybacked on Next responses
// (best-effort cache warming, so any node can serve any cached cell),
// and a worker crash loses at most the one chunk it was executing —
// the coordinator re-queues it on WorkerLeave or lease expiry.
//
// The correctness bar is byte-identity: because the simulator is
// deterministic in exactly (trace bytes, config, warmup) and BPC1
// serialization is byte-stable, a multi-node sweep must produce a
// Surface byte-identical to the single-node run. chaos_test.go holds
// the topology to that bar under injected failures. DESIGN.md §11
// documents the architecture.
package cluster

import (
	"context"
	"errors"

	"bpred/internal/core"
	"bpred/internal/obs"
	"bpred/internal/sim"
	"bpred/internal/trace"
)

// ErrShutdown is returned by coordinator calls after Stop.
var ErrShutdown = errors.New("cluster: coordinator shut down")

// ErrUnknownWorker tells a worker the coordinator has no registration
// for it (typically because the coordinator restarted); the worker
// re-Joins and retries.
var ErrUnknownWorker = errors.New("cluster: unknown worker")

// Chunk is the dispatch unit: a slab of cells sharing one
// (trace, warmup) binding, sized by Config.ChunkCells. A worker
// executes a chunk atomically — a crash mid-chunk loses at most this
// one chunk, which the coordinator re-queues.
type Chunk struct {
	ID      uint64        `json:"id"`
	Trace   string        `json:"trace"` // hex SHA-256 content digest
	Warmup  uint64        `json:"warmup"`
	Configs []core.Config `json:"configs"`
}

// CellResult carries one completed cell's metrics.
type CellResult struct {
	Fingerprint string      `json:"fingerprint"`
	Metrics     sim.Metrics `json:"metrics"`
}

// ChunkResult reports one chunk's outcome. Results are
// self-describing (trace + warmup + fingerprints, not just the chunk
// ID), so a restarted coordinator accepts work it never handed out —
// the property that bounds loss across a coordinator crash to chunks,
// never to settled cells.
type ChunkResult struct {
	Chunk  uint64       `json:"chunk"`
	Trace  string       `json:"trace"`
	Warmup uint64       `json:"warmup"`
	Cells  []CellResult `json:"cells"`
	// Err, when non-empty, reports a chunk that failed for a
	// non-cancellation reason; Failed lists the fingerprints of the
	// cells it could not evaluate.
	Err    string   `json:"err,omitempty"`
	Failed []string `json:"failed,omitempty"`
	// Progress is the worker-side simulation counter delta for this
	// chunk (branches and chunk batches; the coordinator owns
	// cell-completion accounting).
	Progress obs.Snapshot `json:"progress"`
}

// ReplicaCell is a settled cell pushed to workers piggybacked on Next
// responses: best-effort replication of the BPC1 ledger, so a chunk
// re-dispatched after a failure can be answered from a warm cache
// instead of re-simulated.
type ReplicaCell struct {
	Trace       string      `json:"trace"`
	Warmup      uint64      `json:"warmup"`
	Fingerprint string      `json:"fingerprint"`
	Metrics     sim.Metrics `json:"metrics"`
}

// Work is one Next response: an optional chunk to execute plus the
// replication backlog accumulated since the worker's last pull. A
// Work with a nil Chunk carries replication traffic only (or, on the
// HTTP transport, a long-poll timeout).
type Work struct {
	Chunk    *Chunk        `json:"chunk,omitempty"`
	Replicas []ReplicaCell `json:"replicas,omitempty"`
}

// CoordinatorClient is the worker's view of the coordinator. The
// Coordinator implements it directly (in-process transport),
// HTTPClient implements it over the wire, and the chaos harness wraps
// either to inject partitions, duplicated deliveries, and crashes.
type CoordinatorClient interface {
	// Join registers the worker (idempotent) and adds it to the
	// consistent-hash ring.
	Join(ctx context.Context, workerID string) error
	// Next blocks until the coordinator has work for workerID or ctx
	// ends.
	Next(ctx context.Context, workerID string) (Work, error)
	// Complete delivers a chunk's results. It is idempotent: cells
	// already settled are silently deduplicated, and results are
	// accepted even from workers the coordinator no longer knows
	// (it restarted, or it presumed the sender dead).
	Complete(ctx context.Context, workerID string, res ChunkResult) error
}

// TraceProvider resolves a trace digest to the decoded trace. The
// service's TraceStore satisfies it in-process; RemoteTraces fetches
// from the coordinator over HTTP. ctx bounds the resolution — a
// remote replication download of a large trace must die with the
// worker's run context.
type TraceProvider interface {
	Trace(ctx context.Context, digest string) (*trace.Trace, error)
}
