package cluster

import (
	"crypto/sha256"
	"fmt"
	"path/filepath"
	"testing"

	"bpred/internal/checkpoint"
	"bpred/internal/core"
)

func testDigest(seed byte) [32]byte {
	return sha256.Sum256([]byte{seed})
}

// testFingerprints returns real core.Config fingerprints spanning the
// scheme families (they contain '|' separators, the tricky case for
// the key codec).
func testFingerprints(t *testing.T) []string {
	t.Helper()
	cfgs := []core.Config{
		{Scheme: core.SchemeAddress, RowBits: 0, ColBits: 10},
		{Scheme: core.SchemeGShare, RowBits: 8, ColBits: 12},
		{Scheme: core.SchemePath, RowBits: 6, ColBits: 10, PathBits: 4},
		{Scheme: core.SchemePAs, RowBits: 4, ColBits: 10, FirstLevel: core.FirstLevel{Kind: core.FirstLevelPerfect}},
	}
	fps := make([]string, 0, len(cfgs))
	for _, c := range cfgs {
		fps = append(fps, c.Fingerprint())
	}
	return fps
}

func TestKeyStringMatchesServiceCellKey(t *testing.T) {
	d := testDigest(1)
	k := Key{Digest: d, Warmup: 500, Fingerprint: "cfg1|s2|r8|c12"}
	want := fmt.Sprintf("%x|%d|%s", d[:], 500, "cfg1|s2|r8|c12")
	if k.String() != want {
		t.Fatalf("Key.String() = %q, want the service cell-key form %q", k.String(), want)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	for _, warmup := range []uint64{0, 1, 64, 500, 1 << 40} {
		for i, fp := range testFingerprints(t) {
			k := Key{Digest: testDigest(byte(i)), Warmup: warmup, Fingerprint: fp}
			got, err := ParseKey(k.String())
			if err != nil {
				t.Fatalf("ParseKey(%q): %v", k.String(), err)
			}
			if got != k {
				t.Fatalf("round trip: got %+v, want %+v", got, k)
			}
			if got.String() != k.String() {
				t.Fatalf("canonical re-encode mismatch: %q != %q", got.String(), k.String())
			}
		}
	}
}

func TestParseKeyRejects(t *testing.T) {
	d := testDigest(2)
	hex64 := fmt.Sprintf("%x", d[:])
	bad := []string{
		"",
		"nodigest",
		hex64,                                // no warmup/fingerprint
		hex64 + "|5",                         // no fingerprint
		hex64 + "|5|",                        // empty fingerprint
		hex64 + "|05|cfg1|s2",                // non-canonical warmup
		hex64 + "|+5|cfg1|s2",                // sign
		hex64 + "|x|cfg1|s2",                 // non-decimal warmup
		hex64[:63] + "|5|cfg1|s2",            // short digest
		hex64[:63] + "g|5|cfg1|s2",           // non-hex digest
		"A" + hex64[1:] + "|5|cfg1",          // uppercase hex
		hex64 + "x|5|cfg1|s2",                // long digest
		hex64 + "|18446744073709551616|cfg1", // warmup overflow
	}
	for _, s := range bad {
		if k, err := ParseKey(s); err == nil {
			t.Errorf("ParseKey(%q) accepted as %+v, want error", s, k)
		}
	}
}

func TestCheckpointFileMatchesPathFor(t *testing.T) {
	for _, warmup := range []uint64{0, 100, 500} {
		for i := byte(0); i < 4; i++ {
			d := testDigest(i)
			k := Key{Digest: d, Warmup: warmup, Fingerprint: "cfg1|s2|r8|c12"}
			want := filepath.Base(checkpoint.PathFor("/some/dir", d, warmup))
			if got := k.CheckpointFile(); got != want {
				t.Fatalf("CheckpointFile() = %q, want PathFor's %q", got, want)
			}
		}
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	for _, warmup := range []uint64{0, 1, 100, 500, 1 << 40} {
		d := testDigest(7)
		k := Key{Digest: d, Warmup: warmup}
		name := k.CheckpointFile()
		prefix, w, err := ParseCheckpointFile(name)
		if err != nil {
			t.Fatalf("ParseCheckpointFile(%q): %v", name, err)
		}
		if w != warmup {
			t.Fatalf("warmup = %d, want %d", w, warmup)
		}
		var wantPrefix [12]byte
		copy(wantPrefix[:], d[:12])
		if prefix != wantPrefix {
			t.Fatalf("prefix = %x, want %x", prefix, wantPrefix)
		}
		if got := CheckpointFileFor(prefix, w); got != name {
			t.Fatalf("CheckpointFileFor round trip: %q != %q", got, name)
		}
	}
}

func TestParseCheckpointFileRejects(t *testing.T) {
	bad := []string{
		"",
		"sweep-.bpc",
		"sweep-abc-w5.bpc", // short prefix
		"nosweep-aaaaaaaaaaaaaaaaaaaaaaaa-w5.bpc", // bad prefix keyword
		"sweep-aaaaaaaaaaaaaaaaaaaaaaaa-w5",       // no suffix
		"sweep-aaaaaaaaaaaaaaaaaaaaaaaa-w05.bpc",  // non-canonical warmup
		"sweep-aaaaaaaaaaaaaaaaaaaaaaaa-w.bpc",    // empty warmup
		"sweep-aaaaaaaaaaaaaaaaaaaaaaaa-wx.bpc",   // non-decimal warmup
		"sweep-AAAAAAAAAAAAAAAAAAAAAAAA-w5.bpc",   // uppercase hex
		"sweep-gggggggggggggggggggggggg-w5.bpc",   // non-hex
		"sweep-aaaaaaaaaaaaaaaaaaaaaaaaaa-w5.bpc", // long prefix
		"sweep-aaaaaaaaaaaaaaaaaaaaaaaa5.bpc",     // missing -w
	}
	for _, name := range bad {
		if _, _, err := ParseCheckpointFile(name); err == nil {
			t.Errorf("ParseCheckpointFile(%q) accepted, want error", name)
		}
	}
}

// FuzzKeyCodec fuzzes both directions of the cell-key codec: every
// constructed Key must survive String/ParseKey and the
// checkpoint-filename projection, and every accepted string must be
// canonical (re-encode to itself).
func FuzzKeyCodec(f *testing.F) {
	for i, fp := range []string{
		"cfg1|s2|r8|c12",
		"cfg1|s4|r4|c10|p4",
		"cfg1|s0|r0|c10",
		"weird fp with spaces",
		"pipes|every|where",
	} {
		d := testDigest(byte(i))
		k := Key{Digest: d, Warmup: uint64(i) * 100, Fingerprint: fp}
		f.Add([]byte(k.String()), uint64(i)*100, fp)
	}
	f.Add([]byte("garbage"), uint64(0), "")
	f.Fuzz(func(t *testing.T, raw []byte, warmup uint64, fp string) {
		if fp != "" {
			var d [32]byte
			copy(d[:], raw)
			k := Key{Digest: d, Warmup: warmup, Fingerprint: fp}
			got, err := ParseKey(k.String())
			if err != nil {
				t.Fatalf("ParseKey(%q): %v", k.String(), err)
			}
			if got != k {
				t.Fatalf("round trip: got %+v, want %+v", got, k)
			}
			name := k.CheckpointFile()
			prefix, w, err := ParseCheckpointFile(name)
			if err != nil {
				t.Fatalf("ParseCheckpointFile(%q): %v", name, err)
			}
			if w != warmup || prefix != [12]byte(d[:12]) {
				t.Fatalf("filename round trip: got (%x, %d), want (%x, %d)", prefix, w, d[:12], warmup)
			}
			if CheckpointFileFor(prefix, w) != name {
				t.Fatalf("CheckpointFileFor(%x, %d) != %q", prefix, w, name)
			}
		}
		if k, err := ParseKey(string(raw)); err == nil {
			if k.String() != string(raw) {
				t.Fatalf("accepted non-canonical key %q (re-encodes to %q)", raw, k.String())
			}
		}
	})
}

// FuzzCheckpointFileName fuzzes the filename parser, seeded with the
// PR 5 sweep-<digest>-w<warmup>.bpc naming corpus (names produced by
// checkpoint.PathFor itself).
func FuzzCheckpointFileName(f *testing.F) {
	for i := byte(0); i < 4; i++ {
		for _, warmup := range []uint64{0, 100, 500, 1 << 20} {
			f.Add(filepath.Base(checkpoint.PathFor(".", testDigest(i), warmup)))
		}
	}
	f.Add("sweep--w.bpc")
	f.Add("not-a-checkpoint")
	f.Fuzz(func(t *testing.T, name string) {
		prefix, warmup, err := ParseCheckpointFile(name)
		if err != nil {
			return
		}
		if got := CheckpointFileFor(prefix, warmup); got != name {
			t.Fatalf("accepted non-canonical name %q (re-encodes to %q)", name, got)
		}
	})
}
