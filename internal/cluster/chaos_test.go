package cluster

// The failure-injection scenarios. Every scenario ends at the same
// bar: the coordinator's BPC1 ledger and the Surface assembled from
// it are byte-identical to an undisturbed single-node sweep, and
// ConfigsCompleted equals the number of distinct cells — acceptance
// was exactly-once no matter how execution was disrupted.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"bpred/internal/sim"
	"bpred/internal/sweep"
)

// TestChaosWorkerKilledMidChunk kills two of three workers at
// deterministic points — one inside chunk execution before the
// kernels run, one at the moment its completion would leave the node
// — and requires the survivor to finish the sweep with no cell lost
// and none double-counted.
func TestChaosWorkerKilledMidChunk(t *testing.T) {
	tr := testTrace(t, 20000, 3)
	o := chaosSweepOpts()
	refCSV, refBPC := reference(t, tr, o)

	dir := t.TempDir()
	coord := NewCoordinator(Config{Dir: dir, ChunkCells: 3})

	configs := sweep.Configs(o)
	type runResult struct {
		ms  []sim.Metrics
		err error
	}
	done := make(chan runResult, 1)
	go func() {
		ms, err := coord.RunCells(runCtx(t), tr.Digest(), uint64(o.Sim.Warmup), configs)
		done <- runResult{ms, err}
	}()

	// Phase 1: only the two victims run, so both are guaranteed to
	// take work before dying.
	victims := startFleet(t, coord, tracesFor(tr), []string{"dies-mid-chunk", "dies-on-complete"},
		func(id string, l *chaosLink, w *Worker) {
			switch id {
			case "dies-mid-chunk":
				// Die inside the first chunk, after the lease is held
				// but before any kernel output exists.
				var once sync.Once
				kill := l.kill
				w.hookChunk = func(context.Context, *Chunk) { once.Do(kill) }
			case "dies-on-complete":
				// Compute the first chunk fully, then die with the
				// completion undelivered — the classic lost-result
				// crash. The cells must be re-executed elsewhere.
				l.killOn = 1
			}
		})
	victims.waitDead("dies-mid-chunk")
	victims.waitDead("dies-on-complete")
	if got := coord.Stats().Requeues; got < 2 {
		t.Fatalf("Requeues = %d, want >= 2 (each victim died holding a lease)", got)
	}

	// Phase 2: the survivor finishes the sweep.
	f := startFleet(t, coord, tracesFor(tr), []string{"survivor"}, nil)
	res := <-done
	if res.err != nil {
		t.Fatalf("RunCells: %v", res.err)
	}
	for i := range res.ms {
		if res.ms[i].Name == "" {
			t.Fatalf("cell %d unsettled after worker deaths", i)
		}
	}

	// The lost chunk was re-executed (at-least-once execution) ...
	computed := f.workers["survivor"].Stats().CellsComputed +
		victims.workers["dies-on-complete"].Stats().CellsComputed
	if computed <= uint64(len(configs)) {
		t.Fatalf("fleet computed %d cells, want > %d (the dropped completion forces re-execution)", computed, len(configs))
	}
	// ... but acceptance stayed exactly-once.
	if got := coord.Counters().Snapshot().ConfigsCompleted; got != uint64(len(configs)) {
		t.Fatalf("ConfigsCompleted = %d, want exactly %d", got, len(configs))
	}

	f.stopAll()
	if err := coord.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	assertByteIdentity(t, coord, dir, tr, o, refCSV, refBPC)
}

// TestChaosCoordinatorRestart partitions the fleet mid-sweep, stops
// the coordinator, brings up a fresh one over the same ledger
// directory, heals the partition, and re-submits. Workers recover via
// ErrUnknownWorker -> re-join; cells settled before the restart come
// off disk; acceptances across both incarnations sum to exactly the
// distinct cell count.
func TestChaosCoordinatorRestart(t *testing.T) {
	tr := testTrace(t, 20000, 4)
	o := chaosSweepOpts()
	refCSV, refBPC := reference(t, tr, o)

	dir := t.TempDir()
	coord1 := NewCoordinator(Config{Dir: dir, ChunkCells: 2})
	f := startFleet(t, coord1, tracesFor(tr), []string{"w1", "w2"}, nil)

	configs := sweep.Configs(o)
	digest := tr.Digest()
	rctx, rcancel := context.WithCancel(context.Background())
	defer rcancel()
	phase1 := make(chan error, 1)
	go func() {
		_, err := coord1.RunCells(rctx, digest, uint64(o.Sim.Warmup), configs)
		phase1 <- err
	}()

	// Let the sweep make real progress, then sever everything.
	waitUntil(t, 60*time.Second, "first cells to settle", func() bool {
		return coord1.Counters().Snapshot().ConfigsCompleted >= 5
	})
	f.partitionAll(true)
	rcancel()
	if err := <-phase1; err != nil && !errors.Is(err, context.Canceled) {
		// nil is possible when the fleet outran the partition.
		t.Fatalf("interrupted RunCells: %v", err)
	}
	completed1 := coord1.Counters().Snapshot().ConfigsCompleted
	if err := coord1.Stop(); err != nil {
		t.Fatalf("stopping first coordinator: %v", err)
	}

	// "Restart": a fresh coordinator over the same ledger directory.
	coord2 := NewCoordinator(Config{Dir: dir, ChunkCells: 2})
	f.swapCoordinator(coord2)
	f.partitionAll(false)

	ms, err := coord2.RunCells(runCtx(t), digest, uint64(o.Sim.Warmup), configs)
	if err != nil {
		t.Fatalf("RunCells after restart: %v", err)
	}
	for i := range ms {
		if ms[i].Name == "" {
			t.Fatalf("cell %d unsettled after restart", i)
		}
	}
	completed2 := coord2.Counters().Snapshot().ConfigsCompleted
	if completed1+completed2 != uint64(len(configs)) {
		t.Fatalf("acceptances across incarnations = %d + %d, want exactly %d",
			completed1, completed2, len(configs))
	}
	if completed1 == 0 {
		t.Fatal("first incarnation accepted nothing; the restart scenario did not split the work")
	}

	f.stopAll()
	if err := coord2.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	assertByteIdentity(t, coord2, dir, tr, o, refCSV, refBPC)
}

// TestChaosRestartStaleCompletion exercises the failure DESIGN.md §11
// used to document as a known limitation: a completion computed under
// one coordinator, held in flight across that coordinator's death,
// and delivered to its successor — whose young chunk sequence numbers
// collide with the dead incarnation's. Incarnation-tagged chunk IDs
// make the stale delivery harmless: it settles no young lease (it is
// counted in Stats.StaleCompletions instead), while its cells are
// still accepted exactly once, and the cell still settles to the
// byte-identical single-node result.
func TestChaosRestartStaleCompletion(t *testing.T) {
	tr := testTrace(t, 20000, 7)
	o := chaosSweepOpts()
	refCSV, refBPC := reference(t, tr, o)

	dir := t.TempDir()
	coord1 := NewCoordinator(Config{Dir: dir, ChunkCells: 2})
	f1 := startFleet(t, coord1, tracesFor(tr), []string{"holds"},
		func(id string, l *chaosLink, w *Worker) { l.holdComplete = true })

	configs := sweep.Configs(o)
	digest := tr.Digest()
	rctx, rcancel := context.WithCancel(context.Background())
	defer rcancel()
	phase1 := make(chan error, 1)
	go func() {
		_, err := coord1.RunCells(rctx, digest, uint64(o.Sim.Warmup), configs)
		phase1 <- err
	}()

	// Let the worker compute at least one chunk whose completion is
	// captured in flight, then tear the first incarnation down.
	waitUntil(t, 60*time.Second, "a completion to be captured in flight", func() bool {
		return f1.links["holds"].heldCount() >= 1
	})
	f1.partitionAll(true)
	rcancel()
	if err := <-phase1; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted RunCells: %v", err)
	}
	if got := coord1.Counters().Snapshot().ConfigsCompleted; got != 0 {
		t.Fatalf("first incarnation accepted %d cells; every completion should be held in flight", got)
	}
	if err := coord1.Stop(); err != nil {
		t.Fatalf("stopping first coordinator: %v", err)
	}
	f1.stopAll()

	// Restart over the same directory: the persisted incarnation
	// counter guarantees a distinct chunk-ID tag.
	coord2 := NewCoordinator(Config{Dir: dir, ChunkCells: 2})
	if coord2.Incarnation() == coord1.Incarnation() {
		t.Fatalf("restarted coordinator reused incarnation %d", coord1.Incarnation())
	}

	// Re-submit the whole sweep so the young coordinator mints chunks
	// whose low sequence bits collide with the held completion's, and
	// start dispatching them to a fresh worker.
	type runCellsResult struct {
		ms  []sim.Metrics
		err error
	}
	ctx2 := runCtx(t)
	phase2 := make(chan runCellsResult, 1)
	go func() {
		ms, err := coord2.RunCells(ctx2, digest, uint64(o.Sim.Warmup), configs)
		phase2 <- runCellsResult{ms, err}
	}()
	f2 := startFleet(t, coord2, tracesFor(tr), []string{"fresh"}, nil)
	waitUntil(t, 60*time.Second, "the young coordinator to dispatch", func() bool {
		return coord2.Stats().ChunksDispatched >= 1
	})

	// Deliver the stale completions mid-sweep, exactly as a zombie
	// worker reconnecting after the restart would.
	held := f1.links["holds"].takeHeld()
	if len(held) == 0 {
		t.Fatal("no held completions to replay")
	}
	for _, res := range held {
		if res.Chunk>>32 != coord1.Incarnation() {
			t.Fatalf("held chunk %#x not tagged with incarnation %d", res.Chunk, coord1.Incarnation())
		}
		if err := coord2.Complete(context.Background(), "holds", res); err != nil {
			t.Fatalf("delivering stale completion: %v", err)
		}
	}
	if got, want := coord2.Stats().StaleCompletions, uint64(len(held)); got != want {
		t.Fatalf("StaleCompletions = %d, want %d", got, want)
	}

	res := <-phase2
	if res.err != nil {
		t.Fatalf("RunCells after restart: %v", res.err)
	}
	for i := range res.ms {
		if res.ms[i].Name == "" {
			t.Fatalf("cell %d unsettled after the stale delivery", i)
		}
	}
	// Exactly-once acceptance across the stale replay and the fresh
	// execution: the first incarnation accepted nothing, so the second
	// must have accepted every distinct cell exactly once.
	if got := coord2.Counters().Snapshot().ConfigsCompleted; got != uint64(len(configs)) {
		t.Fatalf("ConfigsCompleted = %d, want exactly %d", got, uint64(len(configs)))
	}

	f2.stopAll()
	if err := coord2.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	assertByteIdentity(t, coord2, dir, tr, o, refCSV, refBPC)
}

// TestChaosDuplicateCompletions delivers every chunk result twice —
// the retry-after-lost-ack failure. Every duplicated cell must be
// dropped by the ledger, never double-counted.
func TestChaosDuplicateCompletions(t *testing.T) {
	tr := testTrace(t, 20000, 5)
	o := chaosSweepOpts()
	refCSV, refBPC := reference(t, tr, o)

	dir := t.TempDir()
	coord := NewCoordinator(Config{Dir: dir, ChunkCells: 3})
	f := startFleet(t, coord, tracesFor(tr), []string{"w1", "w2"},
		func(id string, l *chaosLink, w *Worker) { l.dupComplete = true })

	configs := sweep.Configs(o)
	ms, err := coord.RunCells(runCtx(t), tr.Digest(), uint64(o.Sim.Warmup), configs)
	if err != nil {
		t.Fatalf("RunCells: %v", err)
	}
	for i := range ms {
		if ms[i].Name == "" {
			t.Fatalf("cell %d unsettled", i)
		}
	}
	snap := coord.Counters().Snapshot()
	if snap.ConfigsCompleted != uint64(len(configs)) {
		t.Fatalf("ConfigsCompleted = %d, want exactly %d despite duplicate deliveries", snap.ConfigsCompleted, len(configs))
	}
	// The final chunk's duplicate delivery races RunCells's return;
	// wait for it rather than asserting instantly.
	waitUntil(t, 30*time.Second, "all duplicate deliveries", func() bool {
		return coord.Stats().DupCells == uint64(len(configs))
	})

	f.stopAll()
	if err := coord.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	assertByteIdentity(t, coord, dir, tr, o, refCSV, refBPC)
}

// TestChaosReplicationDelayDrop degrades the replication channel —
// one worker never receives replicas, one receives them late — and
// shows replication is pure optimization: correctness and exactly-
// once accounting hold regardless.
func TestChaosReplicationDelayDrop(t *testing.T) {
	tr := testTrace(t, 20000, 6)
	o := chaosSweepOpts()
	refCSV, refBPC := reference(t, tr, o)

	dir := t.TempDir()
	coord := NewCoordinator(Config{Dir: dir, ChunkCells: 3})
	f := startFleet(t, coord, tracesFor(tr), []string{"drops", "delays", "clean"},
		func(id string, l *chaosLink, w *Worker) {
			switch id {
			case "drops":
				l.dropReplicas = true
			case "delays":
				l.holdReplicas = true
			}
		})

	// Release the held replicas mid-sweep so the delayed batch lands
	// while work is still flowing. (No t calls in here: this is not
	// the test goroutine.)
	released := make(chan struct{})
	go func() {
		defer close(released)
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			if coord.Counters().Snapshot().ConfigsCompleted >= 15 {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		l := f.links["delays"]
		l.mu.Lock()
		l.holdReplicas = false
		l.mu.Unlock()
	}()

	configs := sweep.Configs(o)
	ms, err := coord.RunCells(runCtx(t), tr.Digest(), uint64(o.Sim.Warmup), configs)
	if err != nil {
		t.Fatalf("RunCells: %v", err)
	}
	<-released
	for i := range ms {
		if ms[i].Name == "" {
			t.Fatalf("cell %d unsettled", i)
		}
	}
	if got := coord.Counters().Snapshot().ConfigsCompleted; got != uint64(len(configs)) {
		t.Fatalf("ConfigsCompleted = %d, want exactly %d", got, len(configs))
	}
	// On one core a single worker can drain the whole sweep before its
	// idle peers wake to pull their backlogs; wait for the drain.
	waitUntil(t, 30*time.Second, "replicas to be sent", func() bool {
		return coord.Stats().ReplicasSent > 0
	})

	f.stopAll()
	if err := coord.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	assertByteIdentity(t, coord, dir, tr, o, refCSV, refBPC)
}
