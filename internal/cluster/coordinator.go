package cluster

import (
	"context"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bpred/internal/checkpoint"
	"bpred/internal/core"
	"bpred/internal/obs"
	"bpred/internal/sim"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Dir, when non-empty, roots the authoritative per-(trace,
	// warmup) BPC1 checkpoint files. Empty keeps the ledger in memory
	// only (tests). The directory must not be shared with another
	// live Store per checkpoint's one-Store-per-path rule.
	Dir string
	// ChunkCells is the number of cells per dispatch chunk
	// (default 8). Smaller chunks bound the work a crash loses;
	// larger ones amortize dispatch and let the fused kernels run
	// wider config groups in one trace pass.
	ChunkCells int
	// Vnodes is the virtual-node count per worker on the hash ring
	// (default DefaultVnodes).
	Vnodes int
	// LeaseTimeout, when positive, re-queues a dispatched chunk whose
	// completion has not arrived within the timeout — liveness under
	// silent worker death on the HTTP transport. Zero disables the
	// reaper; in-process deployments signal death via WorkerLeave.
	LeaseTimeout time.Duration
	// NoReplicate disables piggybacked cell replication to workers.
	NoReplicate bool
	// Incarnation distinguishes this coordinator's chunk IDs from
	// those of earlier coordinators over the same deployment: chunk
	// IDs are incarnation<<32 | sequence, so a completion held in
	// flight across a coordinator restart can never collide with a
	// young chunk ID the restarted coordinator re-issued (DESIGN.md
	// §11's known limitation, now closed). Zero derives it
	// automatically: from a persisted counter under Dir when Dir is
	// set (each NewCoordinator increments it), else 1.
	Incarnation uint64
	// PublishName, when non-empty, publishes the coordinator's
	// counters under this name (obs.Published, the /metrics page).
	PublishName string
}

// Stats counts coordinator-side scheduling events.
type Stats struct {
	// ChunksDispatched counts Next responses that carried a chunk.
	ChunksDispatched uint64
	// Steals counts chunks a worker pulled from another worker's
	// queue.
	Steals uint64
	// Requeues counts chunks re-queued after worker death or lease
	// expiry.
	Requeues uint64
	// DupCells counts completed cells dropped because the ledger had
	// already settled them (duplicated deliveries, re-executed
	// chunks).
	DupCells uint64
	// ReplicasSent counts replica cells piggybacked onto Next
	// responses.
	ReplicasSent uint64
	// FlushErrors counts checkpoint flush failures; accepted cells
	// stay authoritative in memory and the flush retries on the next
	// acceptance and at Stop.
	FlushErrors uint64
	// StaleCompletions counts completions whose chunk ID carries
	// another coordinator incarnation's tag — deliveries that raced a
	// coordinator restart. Their cells are still folded into the
	// ledger (acceptance is self-describing and exactly-once), but
	// they settle no lease of this incarnation.
	StaleCompletions uint64
}

// Coordinator owns the cluster-scope single-flight ledger: the set of
// settled cells (backed by BPC1 checkpoint stores) plus the queues of
// chunks in flight. A cell is accepted — counted into
// ConfigsCompleted and made visible to sweeps — exactly once, however
// many workers report it; execution is at-least-once only across
// failures (a chunk whose completion was lost is re-run).
//
// The Coordinator itself implements CoordinatorClient, which is the
// in-process transport; Handler wraps it for HTTP workers.
type Coordinator struct {
	cfg         Config
	cnt         *obs.Counters
	incarnation uint64

	mu       sync.Mutex
	cond     *sync.Cond
	closed   bool                         //bplint:guardedby mu
	nextID   uint64                       //bplint:guardedby mu
	ring     *Ring                        //bplint:guardedby mu
	workers  map[string]*workerState      //bplint:guardedby mu
	global   []*chunkState                //bplint:guardedby mu // chunks with no ring owner (empty fleet)
	pending  map[uint64]*chunkState       //bplint:guardedby mu // dispatched, awaiting completion
	cells    map[string]*cellWait         //bplint:guardedby mu // unsettled cells by Key.String()
	stores   map[string]*checkpoint.Store //bplint:guardedby mu // "digest|warmup" -> authoritative ledger
	seen     map[uint64]bool              //bplint:guardedby mu // chunk IDs whose progress was merged
	stats    Stats                        //bplint:guardedby mu
	stopReap chan struct{}
}

type workerState struct {
	id       string
	queue    []*chunkState
	backlog  []ReplicaCell
	lastSeen time.Time
}

type chunkState struct {
	chunk    Chunk
	store    *checkpoint.Store
	routeKey string // first cell's Key.String(), the ring placement key
	assigned string // worker currently leasing it ("" = queued)
	deadline time.Time
	settled  bool // reported, or found fully cached at dispatch
}

type cellWait struct {
	done chan struct{}
	m    sim.Metrics
	err  error
}

// NewCoordinator builds a coordinator. Call Stop to flush the ledger
// and release waiters.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.ChunkCells <= 0 {
		cfg.ChunkCells = 8
	}
	c := &Coordinator{
		cfg:     cfg,
		cnt:     &obs.Counters{},
		ring:    NewRing(cfg.Vnodes),
		workers: make(map[string]*workerState),
		pending: make(map[uint64]*chunkState),
		cells:   make(map[string]*cellWait),
		stores:  make(map[string]*checkpoint.Store),
		seen:    make(map[uint64]bool),
	}
	c.incarnation = cfg.Incarnation
	if c.incarnation == 0 {
		c.incarnation = nextIncarnation(cfg.Dir)
	}
	c.cond = sync.NewCond(&c.mu)
	if cfg.PublishName != "" {
		c.cnt.Publish(cfg.PublishName)
	}
	if cfg.LeaseTimeout > 0 {
		c.stopReap = make(chan struct{})
		go c.reap()
	}
	return c
}

// nextIncarnation derives a fresh coordinator incarnation: a counter
// persisted under dir, incremented on every coordinator start, so
// successive coordinators over one deployment never share chunk-ID
// tags. Without a directory (in-memory deployments) there is nothing
// to survive a restart into, so the incarnation is a constant 1.
func nextIncarnation(dir string) uint64 {
	if dir == "" {
		return 1
	}
	path := filepath.Join(dir, "incarnation")
	n := uint64(0)
	if raw, err := os.ReadFile(path); err == nil {
		if v, perr := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 32); perr == nil {
			n = v
		}
	}
	n++
	if n > 0xffffffff {
		n = 1 // 32-bit tag space wrapped; collisions need 4G restarts plus a 2^32-chunk-old straggler
	}
	if err := os.MkdirAll(dir, 0o755); err == nil {
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, []byte(strconv.FormatUint(n, 10)+"\n"), 0o644); err == nil {
			if err := os.Rename(tmp, path); err != nil {
				fmt.Fprintf(os.Stderr, "cluster: persisting incarnation: %v\n", err)
			}
		} else {
			fmt.Fprintf(os.Stderr, "cluster: persisting incarnation: %v\n", err)
		}
	}
	return n
}

// Incarnation returns the coordinator's chunk-ID tag.
func (c *Coordinator) Incarnation() uint64 { return c.incarnation }

// chunkIDLocked mints the next chunk ID: the coordinator's
// incarnation in the high 32 bits over a per-process sequence.
func (c *Coordinator) chunkIDLocked() uint64 {
	c.nextID++
	return c.incarnation<<32 | (c.nextID & 0xffffffff)
}

// Counters exposes the coordinator's fleet-global counters.
// ConfigsCompleted counts exactly-once cell acceptances, which is the
// chaos harness's proof obligation.
func (c *Coordinator) Counters() *obs.Counters { return c.cnt }

// Stats returns a snapshot of the scheduling statistics.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// StoreFor returns the authoritative ledger for one (trace, warmup)
// binding, creating it on first use. The returned Store is shared —
// per checkpoint's rules, do not Open a second Store on its path.
func (c *Coordinator) StoreFor(digest [32]byte, warmup uint64) (*checkpoint.Store, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.storeForLocked(digest, warmup)
}

func (c *Coordinator) storeForLocked(digest [32]byte, warmup uint64) (*checkpoint.Store, error) {
	key := fmt.Sprintf("%x|%d", digest[:], warmup)
	if s, ok := c.stores[key]; ok {
		return s, nil
	}
	var s *checkpoint.Store
	if c.cfg.Dir == "" {
		s = checkpoint.NewMemory(digest, warmup)
	} else {
		var err error
		s, err = checkpoint.Open(checkpoint.PathFor(c.cfg.Dir, digest, warmup), digest, warmup)
		if err != nil {
			return nil, err
		}
	}
	c.stores[key] = s
	return s, nil
}

// RunCells evaluates configs against (digest, warmup) across the
// fleet and returns metrics aligned with configs. Settled cells are
// served from the ledger (counted ConfigsCached); missing cells are
// chunked, routed by ring ownership, and waited on. Concurrent
// RunCells calls wanting the same cell subscribe to one execution —
// the cluster-scope single-flight.
//
// On ctx cancellation the partial result is returned with ctx.Err():
// settled entries carry non-empty Names, mirroring
// sim.RunConfigsCtx's partial-result contract. Cells already
// enqueued keep executing and settle into the ledger for the next
// caller.
func (c *Coordinator) RunCells(ctx context.Context, digest [32]byte, warmup uint64, configs []core.Config) ([]sim.Metrics, error) {
	out := make([]sim.Metrics, len(configs))
	type sub struct {
		i int
		w *cellWait
	}
	var subs []sub

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return out, ErrShutdown
	}
	store, err := c.storeForLocked(digest, warmup)
	if err != nil {
		c.mu.Unlock()
		return out, err
	}
	var fresh []core.Config
	var freshKeys []string
	for i, cfg := range configs {
		fp := cfg.Fingerprint()
		if m, ok := store.Lookup(fp); ok {
			out[i] = m
			c.cnt.AddCached(1)
			continue
		}
		key := Key{Digest: digest, Warmup: warmup, Fingerprint: fp}.String()
		if w, ok := c.cells[key]; ok {
			subs = append(subs, sub{i: i, w: w})
			continue
		}
		w := &cellWait{done: make(chan struct{})}
		c.cells[key] = w
		subs = append(subs, sub{i: i, w: w})
		fresh = append(fresh, cfg)
		freshKeys = append(freshKeys, key)
	}
	if len(fresh) > 0 {
		c.enqueueLocked(store, digest, warmup, fresh, freshKeys)
		c.cond.Broadcast()
	}
	c.mu.Unlock()

	for _, s := range subs {
		select {
		case <-ctx.Done():
			return out, ctx.Err()
		case <-s.w.done:
			if s.w.err != nil {
				return out, s.w.err
			}
			out[s.i] = s.w.m
		}
	}
	return out, nil
}

// enqueueLocked chunks fresh cells by ring owner and pushes the
// chunks onto the owners' queues (ring affinity keeps a worker's warm
// replica cache relevant; stealing rebalances load afterwards).
func (c *Coordinator) enqueueLocked(store *checkpoint.Store, digest [32]byte, warmup uint64, configs []core.Config, keys []string) {
	hexDigest := hex.EncodeToString(digest[:])
	type group struct {
		cfgs []core.Config
		keys []string
	}
	groups := make(map[string]*group)
	var order []string
	for i, cfg := range configs {
		owner, _ := c.ring.Owner(keys[i]) // "" routes to the global queue
		g := groups[owner]
		if g == nil {
			g = &group{}
			groups[owner] = g
			order = append(order, owner)
		}
		g.cfgs = append(g.cfgs, cfg)
		g.keys = append(g.keys, keys[i])
	}
	sort.Strings(order) // deterministic chunk numbering
	for _, owner := range order {
		g := groups[owner]
		for lo := 0; lo < len(g.cfgs); lo += c.cfg.ChunkCells {
			hi := min(lo+c.cfg.ChunkCells, len(g.cfgs))
			cs := &chunkState{
				chunk: Chunk{
					ID:      c.chunkIDLocked(),
					Trace:   hexDigest,
					Warmup:  warmup,
					Configs: append([]core.Config(nil), g.cfgs[lo:hi]...),
				},
				store:    store,
				routeKey: g.keys[lo],
			}
			c.pushLocked(owner, cs)
		}
	}
}

func (c *Coordinator) pushLocked(owner string, cs *chunkState) {
	if w, ok := c.workers[owner]; ok {
		w.queue = append(w.queue, cs)
		return
	}
	c.global = append(c.global, cs)
}

// Join implements CoordinatorClient: it registers the worker, adds it
// to the ring, and re-routes queued chunks the new membership assigns
// elsewhere.
func (c *Coordinator) Join(ctx context.Context, workerID string) error {
	_ = ctx
	if workerID == "" {
		return fmt.Errorf("cluster: empty worker id")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrShutdown
	}
	if _, ok := c.workers[workerID]; ok {
		return nil
	}
	c.workers[workerID] = &workerState{id: workerID, lastSeen: obs.Now()}
	c.ring.Add(workerID)
	c.rebalanceLocked()
	c.cond.Broadcast()
	return nil
}

// WorkerLeave deregisters a worker: its ring points disappear, its
// in-flight leases are reclaimed, and its queued chunks are re-routed
// to the survivors. A completion the dead worker still manages to
// deliver later is accepted and deduplicated like any other.
func (c *Coordinator) WorkerLeave(workerID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[workerID]
	if !ok {
		return
	}
	delete(c.workers, workerID)
	c.ring.Remove(workerID)
	for id, cs := range c.pending {
		if cs.assigned == workerID {
			delete(c.pending, id)
			cs.assigned = ""
			c.stats.Requeues++
			c.routeLocked(cs)
		}
	}
	for _, cs := range w.queue {
		c.routeLocked(cs)
	}
	c.cond.Broadcast()
}

// routeLocked pushes a chunk onto its ring owner's queue.
func (c *Coordinator) routeLocked(cs *chunkState) {
	owner, _ := c.ring.Owner(cs.routeKey)
	c.pushLocked(owner, cs)
}

// rebalanceLocked re-routes every queued (unleased) chunk under the
// current ring membership.
func (c *Coordinator) rebalanceLocked() {
	all := c.global
	c.global = nil
	for _, id := range c.workerIDsLocked() {
		w := c.workers[id]
		all = append(all, w.queue...)
		w.queue = nil
	}
	for _, cs := range all {
		c.routeLocked(cs)
	}
}

func (c *Coordinator) workerIDsLocked() []string {
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Next implements CoordinatorClient: it blocks until the coordinator
// has work for workerID or ctx ends. Replication backlog is always
// drained into the response; a chunk comes from the worker's own
// queue first, then the ownerless global queue, then — work stealing
// — the tail of the longest peer queue.
func (c *Coordinator) Next(ctx context.Context, workerID string) (Work, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()
	for {
		if c.closed {
			return Work{}, ErrShutdown
		}
		if err := ctx.Err(); err != nil {
			return Work{}, err
		}
		w, ok := c.workers[workerID]
		if !ok {
			return Work{}, ErrUnknownWorker
		}
		w.lastSeen = obs.Now()
		var work Work
		work.Replicas = w.backlog
		w.backlog = nil
		c.stats.ReplicasSent += uint64(len(work.Replicas))
		if cs, stolen := c.popLocked(w); cs != nil {
			cs.assigned = workerID
			if c.cfg.LeaseTimeout > 0 {
				cs.deadline = obs.Now().Add(c.cfg.LeaseTimeout)
			}
			c.pending[cs.chunk.ID] = cs
			c.stats.ChunksDispatched++
			if stolen {
				c.stats.Steals++
			}
			chunk := cs.chunk
			work.Chunk = &chunk
			return work, nil
		}
		if len(work.Replicas) > 0 {
			return work, nil
		}
		c.cond.Wait()
	}
}

// popLocked pops the next dispatchable chunk for w; stolen reports
// whether it came from a peer's queue.
func (c *Coordinator) popLocked(w *workerState) (cs *chunkState, stolen bool) {
	if cs = c.popFrontLocked(&w.queue); cs != nil {
		return cs, false
	}
	if cs = c.popFrontLocked(&c.global); cs != nil {
		return cs, false
	}
	// Steal from the tail of the longest peer queue (ties broken by
	// name for determinism); tails are the chunks the owner would
	// reach last, so affinity is disturbed least.
	var victim *workerState
	for _, id := range c.workerIDsLocked() {
		p := c.workers[id]
		if p == w || len(p.queue) == 0 {
			continue
		}
		if victim == nil || len(p.queue) > len(victim.queue) {
			victim = p
		}
	}
	if victim == nil {
		return nil, false
	}
	if cs = c.popBackLocked(&victim.queue); cs != nil {
		return cs, true
	}
	return nil, false
}

func (c *Coordinator) popFrontLocked(q *[]*chunkState) *chunkState {
	for len(*q) > 0 {
		cs := (*q)[0]
		*q = (*q)[1:]
		if c.dispatchableLocked(cs) {
			return cs
		}
	}
	return nil
}

func (c *Coordinator) popBackLocked(q *[]*chunkState) *chunkState {
	for len(*q) > 0 {
		cs := (*q)[len(*q)-1]
		*q = (*q)[:len(*q)-1]
		if c.dispatchableLocked(cs) {
			return cs
		}
	}
	return nil
}

// dispatchableLocked reports whether a chunk still has unsettled
// cells. A chunk re-queued after a presumed worker death whose
// original lease then completed is fully settled; it is dropped here
// instead of being re-executed.
func (c *Coordinator) dispatchableLocked(cs *chunkState) bool {
	if cs.settled {
		return false
	}
	for _, cfg := range cs.chunk.Configs {
		if _, ok := cs.store.Lookup(cfg.Fingerprint()); !ok {
			return true
		}
	}
	cs.settled = true
	return false
}

// Complete implements CoordinatorClient: it folds a chunk's results
// into the ledger. Acceptance is exactly-once per cell — a cell
// already settled is dropped (stats.DupCells) without touching
// ConfigsCompleted — and unconditional on the sender: completions
// from deregistered workers and from before a coordinator restart
// carry everything needed to be accepted on their own.
func (c *Coordinator) Complete(ctx context.Context, workerID string, res ChunkResult) error {
	_ = ctx
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrShutdown
	}
	digest, err := parseDigest(res.Trace)
	if err != nil {
		return err
	}
	store, err := c.storeForLocked(digest, res.Warmup)
	if err != nil {
		return err
	}
	if w, ok := c.workers[workerID]; ok {
		w.lastSeen = obs.Now()
	}
	// A completion minted by another incarnation (held in flight
	// across a coordinator restart) can settle no lease here — its ID
	// cannot collide with any this coordinator issued. Its cells are
	// still accepted below exactly like fresh ones: cell identity is
	// content-addressed and independent of scheduling generation.
	if res.Chunk>>32 != c.incarnation {
		c.stats.StaleCompletions++
	}
	accepted := 0
	for _, cell := range res.Cells {
		if _, ok := store.Lookup(cell.Fingerprint); ok {
			c.stats.DupCells++
			continue
		}
		store.Add(cell.Fingerprint, cell.Metrics)
		c.cnt.AddCompleted(1)
		accepted++
		key := Key{Digest: digest, Warmup: res.Warmup, Fingerprint: cell.Fingerprint}.String()
		if cw, ok := c.cells[key]; ok {
			cw.m = cell.Metrics
			close(cw.done)
			delete(c.cells, key)
		}
		if !c.cfg.NoReplicate {
			rep := ReplicaCell{Trace: res.Trace, Warmup: res.Warmup, Fingerprint: cell.Fingerprint, Metrics: cell.Metrics}
			for id, ws := range c.workers {
				if id == workerID {
					continue // the sender computed it; its cache is already warm
				}
				ws.backlog = append(ws.backlog, rep)
			}
		}
	}
	if accepted > 0 {
		// Flush per acceptance batch: a coordinator crash then loses
		// at most the chunks completed since the last Complete call.
		if err := store.Flush(); err != nil {
			c.stats.FlushErrors++
		}
		c.cond.Broadcast() // replica backlogs may now unblock idle pulls
	}
	if !c.seen[res.Chunk] {
		c.seen[res.Chunk] = true
		// Merge only the worker-side simulation load (branches,
		// batches): completion and cache accounting is the
		// coordinator's, and keeping it here is what makes
		// ConfigsCompleted the exactly-once witness.
		p := res.Progress
		p.ConfigsCompleted, p.ConfigsCached, p.ConfigsFailed = 0, 0, 0
		p.TiersCompleted, p.TierTime, p.Elapsed = 0, 0, 0
		c.cnt.Merge(p)
	}
	if cs, ok := c.pending[res.Chunk]; ok {
		delete(c.pending, res.Chunk)
		cs.settled = true
	}
	if res.Err != "" {
		failErr := fmt.Errorf("cluster: chunk %d failed: %s", res.Chunk, res.Err)
		for _, fp := range res.Failed {
			key := Key{Digest: digest, Warmup: res.Warmup, Fingerprint: fp}.String()
			if cw, ok := c.cells[key]; ok {
				cw.err = failErr
				close(cw.done)
				delete(c.cells, key)
			}
		}
	}
	return nil
}

// reap re-queues chunks whose lease expired without a completion.
func (c *Coordinator) reap() {
	t := time.NewTicker(c.cfg.LeaseTimeout / 2)
	defer t.Stop()
	for {
		select {
		case <-c.stopReap:
			return
		case <-t.C:
			c.mu.Lock()
			now := obs.Now()
			for id, cs := range c.pending {
				if now.After(cs.deadline) {
					delete(c.pending, id)
					cs.assigned = ""
					c.stats.Requeues++
					c.routeLocked(cs)
				}
			}
			c.cond.Broadcast()
			c.mu.Unlock()
		}
	}
}

// Stop shuts the coordinator down: blocked Next calls and outstanding
// cell waiters resolve with ErrShutdown and every ledger store is
// flushed. It returns the first flush error.
func (c *Coordinator) Stop() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.stopReap != nil {
		close(c.stopReap)
	}
	for key, w := range c.cells {
		w.err = ErrShutdown
		close(w.done)
		delete(c.cells, key)
	}
	var first error
	keys := make([]string, 0, len(c.stores))
	for k := range c.stores {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := c.stores[k].Flush(); err != nil && first == nil {
			first = err
		}
	}
	c.cond.Broadcast()
	return first
}
