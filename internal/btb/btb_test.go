package btb

import (
	"testing"

	"bpred/internal/workload"
)

func TestMissThenHit(t *testing.T) {
	b := New(64, 4)
	pc, tgt := uint64(0x1000), uint64(0x2000)
	if _, ok := b.Lookup(pc); ok {
		t.Fatal("cold lookup hit")
	}
	b.Update(pc, tgt, true)
	got, ok := b.Lookup(pc)
	if !ok || got != tgt {
		t.Fatalf("lookup after taken update: %#x/%v", got, ok)
	}
	if b.HitRate() != 0.5 {
		t.Fatalf("hit rate %g, want 0.5", b.HitRate())
	}
}

func TestNotTakenNeverAllocates(t *testing.T) {
	b := New(16, 2)
	b.Update(0x1000, 0x2000, false)
	if _, ok := b.Lookup(0x1000); ok {
		t.Fatal("not-taken branch allocated an entry")
	}
	// But a not-taken update refreshes an existing entry's target.
	b.Update(0x1000, 0x2000, true)
	b.Update(0x1000, 0x3000, false)
	got, _ := b.Lookup(0x1000)
	if got != 0x3000 {
		t.Fatalf("target %#x, want refreshed 0x3000", got)
	}
}

func TestLRUEviction(t *testing.T) {
	b := New(2, 2) // one set, two ways
	b.Update(0x100, 0x1, true)
	b.Update(0x200, 0x2, true)
	b.Lookup(0x100) // refresh
	b.Update(0x300, 0x3, true)
	if _, ok := b.Lookup(0x100); !ok {
		t.Error("MRU entry evicted")
	}
	if _, ok := b.Lookup(0x200); ok {
		t.Error("LRU entry survived")
	}
}

func TestSetIsolation(t *testing.T) {
	b := New(8, 1) // 8 direct-mapped sets
	b.Update(0x1000, 0xA, true)
	b.Update(0x1004, 0xB, true) // adjacent word: different set
	ta, _ := b.Lookup(0x1000)
	tb, _ := b.Lookup(0x1004)
	if ta != 0xA || tb != 0xB {
		t.Fatalf("isolation broken: %#x %#x", ta, tb)
	}
}

func TestTargetChangeTracked(t *testing.T) {
	// Indirect-branch-like behavior: the stored target follows the
	// most recent taken target.
	b := New(16, 2)
	b.Update(0x100, 0x1000, true)
	b.Update(0x100, 0x2000, true)
	got, _ := b.Lookup(0x100)
	if got != 0x2000 {
		t.Fatalf("target %#x, want 0x2000", got)
	}
}

func TestReset(t *testing.T) {
	b := New(8, 2)
	b.Update(0x100, 0x1, true)
	b.Lookup(0x100)
	b.Reset()
	if b.Lookups() != 0 || b.Hits() != 0 {
		t.Fatal("stats survived reset")
	}
	if _, ok := b.Lookup(0x100); ok {
		t.Fatal("entry survived reset")
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 1) },
		func() { New(7, 2) },
		func() { New(12, 4) },
		func() { New(8, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid New did not panic")
				}
			}()
			f()
		}()
	}
}

func TestHitRateGrowsWithCapacity(t *testing.T) {
	prof, _ := workload.ProfileByName("real_gcc")
	tr := workload.Generate(prof, 4, 200_000)
	rate := func(entries int) float64 {
		b := New(entries, 4)
		src := tr.NewSource()
		for {
			br, ok := src.Next()
			if !ok {
				break
			}
			b.Lookup(br.PC)
			b.Update(br.PC, br.Target, br.Taken)
		}
		return b.HitRate()
	}
	small, large := rate(128), rate(4096)
	if large <= small {
		t.Fatalf("hit rate did not grow with capacity: %g vs %g", small, large)
	}
	// Taken-only allocation means never-taken branches always miss
	// (harmlessly: they fall through), so the ceiling is well below 1.
	if large < 0.7 {
		t.Errorf("4096-entry BTB hit rate %.3f; suspiciously low", large)
	}
}

func BenchmarkBTB(b *testing.B) {
	prof, _ := workload.ProfileByName("espresso")
	tr := workload.Generate(prof, 1, 100_000)
	buf := New(1024, 4)
	src := tr.NewSource()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br, ok := src.Next()
		if !ok {
			src = tr.NewSource()
			br, _ = src.Next()
		}
		buf.Lookup(br.PC)
		buf.Update(br.PC, br.Target, br.Taken)
	}
}
