// Package btb implements a branch target buffer — the structure that
// supplies a predicted-taken branch's target address at fetch time.
//
// The paper's misprediction-rate figure of merit deliberately brackets
// out "the availability or lack of availability of the branch target
// instruction" (§2), but a real front end needs both: a direction
// predictor deciding taken/not-taken and a BTB supplying where to
// fetch next. The paper also notes (§5) that PAs first-level history
// storage can be integrated with a BTB to avoid duplicate tags; this
// package provides that structure, and sim.RunFrontend combines it
// with any core.Predictor into fetch-redirect statistics.
package btb

import (
	"fmt"
	mathbits "math/bits"
)

// BTB is a set-associative branch target buffer with LRU replacement.
// Entries are allocated for taken branches only (the classic policy:
// never-taken branches never need a target).
type BTB struct {
	ways    int
	setBits int
	setMask uint64

	tags   []uint64
	target []uint64
	valid  []bool
	stamp  []uint64
	tick   uint64

	lookups uint64
	hits    uint64
}

// New returns a BTB with the given total entry count and
// associativity. entries must be a positive multiple of ways with a
// power-of-two set count.
func New(entries, ways int) *BTB {
	if ways < 1 {
		panic(fmt.Sprintf("btb: New ways=%d", ways))
	}
	if entries <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("btb: New entries=%d not a positive multiple of ways=%d", entries, ways))
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("btb: New set count %d not a power of two", sets))
	}
	return &BTB{
		ways:    ways,
		setBits: mathbits.Len(uint(sets)) - 1,
		setMask: uint64(sets - 1),
		tags:    make([]uint64, entries),
		target:  make([]uint64, entries),
		valid:   make([]bool, entries),
		stamp:   make([]uint64, entries),
	}
}

// Entries returns the total capacity.
func (b *BTB) Entries() int { return len(b.tags) }

// Ways returns the associativity.
func (b *BTB) Ways() int { return b.ways }

func (b *BTB) set(pc uint64) int    { return int((pc >> 2) & b.setMask) }
func (b *BTB) tag(pc uint64) uint64 { return pc >> (2 + b.setBits) }

// Lookup returns the stored target for pc. ok is false on a miss —
// the front end then has no target until decode resolves it.
func (b *BTB) Lookup(pc uint64) (target uint64, ok bool) {
	b.lookups++
	b.tick++
	base := b.set(pc) * b.ways
	tag := b.tag(pc)
	for w := 0; w < b.ways; w++ {
		i := base + w
		if b.valid[i] && b.tags[i] == tag {
			b.stamp[i] = b.tick
			b.hits++
			return b.target[i], true
		}
	}
	return 0, false
}

// Update installs or refreshes pc's entry after resolution. Taken
// branches allocate (evicting LRU on a full set) and update the
// stored target; not-taken branches only refresh an existing entry's
// target, never allocate.
func (b *BTB) Update(pc, target uint64, taken bool) {
	base := b.set(pc) * b.ways
	tag := b.tag(pc)
	victim, victimStamp := -1, ^uint64(0)
	for w := 0; w < b.ways; w++ {
		i := base + w
		if b.valid[i] && b.tags[i] == tag {
			b.target[i] = target
			return
		}
		if !b.valid[i] {
			if victimStamp != 0 {
				victim, victimStamp = i, 0
			}
		} else if b.stamp[i] < victimStamp {
			victim, victimStamp = i, b.stamp[i]
		}
	}
	if !taken {
		return
	}
	b.tick++
	b.tags[victim] = tag
	b.valid[victim] = true
	b.target[victim] = target
	b.stamp[victim] = b.tick
}

// Lookups returns the cumulative lookup count.
func (b *BTB) Lookups() uint64 { return b.lookups }

// Hits returns the cumulative hit count.
func (b *BTB) Hits() uint64 { return b.hits }

// HitRate returns hits per lookup.
func (b *BTB) HitRate() float64 {
	if b.lookups == 0 {
		return 0
	}
	return float64(b.hits) / float64(b.lookups)
}

// Reset clears all entries and statistics.
func (b *BTB) Reset() {
	for i := range b.tags {
		b.tags[i] = 0
		b.target[i] = 0
		b.valid[i] = false
		b.stamp[i] = 0
	}
	b.tick = 0
	b.lookups = 0
	b.hits = 0
}
