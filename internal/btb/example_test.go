package btb_test

import (
	"fmt"

	"bpred/internal/btb"
)

// A BTB supplies the target of a taken branch at fetch time; entries
// are allocated by taken branches only.
func ExampleBTB() {
	buf := btb.New(1024, 4)
	// First fetch: no target known.
	if _, ok := buf.Lookup(0x4000); !ok {
		fmt.Println("cold miss")
	}
	// The branch resolves taken to 0x4800; the entry is installed.
	buf.Update(0x4000, 0x4800, true)
	target, ok := buf.Lookup(0x4000)
	fmt.Printf("hit=%v target=%#x rate=%.2f\n", ok, target, buf.HitRate())
	// Output:
	// cold miss
	// hit=true target=0x4800 rate=0.50
}
