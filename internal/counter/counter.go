// Package counter implements the prediction state machines that
// populate the second level of two-level branch predictors: k-bit
// saturating up/down counters (the two-bit counter of Smith [Smith81]
// being the paper's default), one-bit last-outcome machines, and fixed
// (static) predictors.
//
// All machines implement the Machine interface. Tables of machines are
// provided by Table, which packs two-bit counters densely and supports
// the per-entry conflict bookkeeping the paper's aliasing analysis
// requires (see bpred/internal/core).
package counter

import "fmt"

// Machine is a prediction state machine: it produces a taken/not-taken
// prediction and is trained with actual outcomes.
type Machine interface {
	// Predict returns the current prediction (true = taken).
	Predict() bool
	// Update trains the machine with the actual outcome.
	Update(taken bool)
	// Reset returns the machine to its initial state.
	Reset()
}

// Saturating is a k-bit saturating up/down counter. States range over
// [0, 2^bits - 1]; states in the upper half predict taken. The two-bit
// counter (bits=2) has the classic four states: strongly not-taken (0),
// weakly not-taken (1), weakly taken (2), strongly taken (3).
type Saturating struct {
	bits  uint8
	max   uint8
	init  uint8
	state uint8
}

// NewSaturating returns a k-bit saturating counter initialized to
// state init. It panics if bits is 0 or greater than 8, or if init
// exceeds the maximum state.
func NewSaturating(bits int, init int) *Saturating {
	if bits <= 0 || bits > 8 {
		panic(fmt.Sprintf("counter: NewSaturating with bits=%d (want 1..8)", bits))
	}
	max := uint8(1<<bits - 1)
	if init < 0 || uint8(init) > max {
		panic(fmt.Sprintf("counter: NewSaturating init=%d out of [0,%d]", init, max))
	}
	return &Saturating{bits: uint8(bits), max: max, init: uint8(init), state: uint8(init)}
}

// NewTwoBit returns the paper's default predictor state machine: a
// two-bit saturating counter initialized to weakly taken (state 2).
// Initializing to weak-taken reflects the common hardware choice and
// the observation that branches are taken more often than not.
func NewTwoBit() *Saturating { return NewSaturating(2, 2) }

// Predict reports taken when the state is in the upper half.
func (s *Saturating) Predict() bool { return s.state > s.max/2 }

// Update increments the counter on taken, decrements on not-taken,
// saturating at both ends. Branchless, mirroring Table.Update.
func (s *Saturating) Update(taken bool) {
	up := b2u8(taken)
	s.state += up & b2u8(s.state < s.max)
	s.state -= (1 - up) & b2u8(s.state > 0)
}

// Reset restores the initial state.
func (s *Saturating) Reset() { s.state = s.init }

// State exposes the current state for tests and instrumentation.
func (s *Saturating) State() int { return int(s.state) }

// Bits returns the counter width.
func (s *Saturating) Bits() int { return int(s.bits) }

// LastOutcome is a one-bit predictor: predict whatever the branch did
// last time. Equivalent to a 1-bit saturating counter but kept as its
// own type because it is a common baseline in the literature
// [Smith81, Lee84].
type LastOutcome struct {
	taken bool
	init  bool
}

// NewLastOutcome returns a last-outcome machine whose initial
// prediction is initTaken.
func NewLastOutcome(initTaken bool) *LastOutcome {
	return &LastOutcome{taken: initTaken, init: initTaken}
}

// Predict returns the previous outcome.
func (l *LastOutcome) Predict() bool { return l.taken }

// Update records the outcome.
func (l *LastOutcome) Update(taken bool) { l.taken = taken }

// Reset restores the initial prediction.
func (l *LastOutcome) Reset() { l.taken = l.init }

// Fixed is a static machine that always predicts the same direction
// and ignores training. It implements the "S" (static) second-level
// option in Yeh and Patt's taxonomy.
type Fixed bool

// Predict returns the fixed direction.
func (f Fixed) Predict() bool { return bool(f) }

// Update is a no-op: static predictions never train.
func (Fixed) Update(bool) {}

// Reset is a no-op.
func (Fixed) Reset() {}

// Agree wraps a machine so that its state encodes agreement with a
// per-branch bias bit rather than a direction. This is the mechanism
// of agree predictors (Sprangle et al.), a dealiasing design directly
// motivated by this paper's aliasing findings; it is included as an
// extension (see core.NewAgree).
type Agree struct {
	inner Machine
}

// NewAgree wraps inner; inner's taken state now means "agrees with the
// bias bit".
func NewAgree(inner Machine) *Agree { return &Agree{inner: inner} }

// PredictWithBias resolves the agreement state against the bias bit.
func (a *Agree) PredictWithBias(bias bool) bool {
	if a.inner.Predict() {
		return bias
	}
	return !bias
}

// UpdateWithBias trains toward "agreed" when the outcome matched bias.
func (a *Agree) UpdateWithBias(taken, bias bool) {
	a.inner.Update(taken == bias)
}

// Reset resets the wrapped machine.
func (a *Agree) Reset() { a.inner.Reset() }
