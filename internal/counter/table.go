package counter

import "fmt"

// Table is a dense 2^rows x 2^cols array of k-bit saturating counters
// — the second-level structure of Figure 1 in the paper (two-bit by
// default, the paper's machine). Rows are selected by the first-level
// mechanism (history); columns by low branch-address bits. The
// representation is one byte per counter; even the largest
// configuration studied in the paper (2^15 counters) occupies only
// 32 KiB, so packing density is traded for branch-free access on the
// simulation fast path.
type Table struct {
	rowBits int
	colBits int
	rowMask uint64
	colMask uint64
	max     uint8 // saturation ceiling: 2^counterBits - 1
	thresh  uint8 // predict taken when state >= thresh
	init    uint8 // weakly-taken initial state
	state   []uint8
}

// NewTable returns a table with 2^rowBits rows and 2^colBits columns
// of two-bit counters initialized to weakly taken. It panics on
// negative sizes or on total sizes above 2^30 counters.
func NewTable(rowBits, colBits int) *Table {
	return NewTableBits(rowBits, colBits, 2)
}

// NewTableBits returns a table of counterBits-wide saturating
// counters (1..8), initialized to the weakly-taken state. One-bit
// counters are last-outcome predictors; wider counters add
// hysteresis, which is what lets a strongly-biased branch shrug off
// occasional aliasing hits.
func NewTableBits(rowBits, colBits, counterBits int) *Table {
	if rowBits < 0 || colBits < 0 {
		panic(fmt.Sprintf("counter: NewTableBits(%d, %d, %d) with negative bits", rowBits, colBits, counterBits))
	}
	if counterBits < 1 || counterBits > 8 {
		panic(fmt.Sprintf("counter: NewTableBits counter width %d out of [1,8]", counterBits))
	}
	total := rowBits + colBits
	if total > 30 {
		panic(fmt.Sprintf("counter: NewTableBits(%d, %d, %d) exceeds 2^30 counters", rowBits, colBits, counterBits))
	}
	max := uint8(1<<counterBits - 1)
	thresh := uint8(1 << (counterBits - 1))
	t := &Table{
		rowBits: rowBits,
		colBits: colBits,
		rowMask: (1 << rowBits) - 1,
		colMask: (1 << colBits) - 1,
		max:     max,
		thresh:  thresh,
		init:    thresh, // weakly taken
		state:   make([]uint8, 1<<total),
	}
	for i := range t.state {
		t.state[i] = t.init
	}
	return t
}

// RowBits returns log2 of the row count.
func (t *Table) RowBits() int { return t.rowBits }

// ColBits returns log2 of the column count.
func (t *Table) ColBits() int { return t.colBits }

// Rows returns the number of rows.
func (t *Table) Rows() int { return 1 << t.rowBits }

// Cols returns the number of columns.
func (t *Table) Cols() int { return 1 << t.colBits }

// Size returns the total number of counters.
func (t *Table) Size() int { return len(t.state) }

// Index computes the flat entry index for a (row, column) pair. Both
// inputs are masked to table bounds, mirroring hardware truncation of
// history and address bits.
func (t *Table) Index(row, col uint64) int {
	return int((row&t.rowMask)<<t.colBits | col&t.colMask)
}

// RowMask returns the row-index mask (Rows()-1).
func (t *Table) RowMask() uint64 { return t.rowMask }

// ColMask returns the column-index mask (Cols()-1).
func (t *Table) ColMask() uint64 { return t.colMask }

// Raw exposes the backing counter array and saturation parameters for
// the batched simulation kernels (bpred/internal/sim), which hoist
// them into loop-local registers — Go's alias analysis cannot prove a
// counter store leaves *Table fields intact, so going through the
// methods would reload every field on every branch. An entry predicts
// taken when state >= thresh; training saturates at [0, max].
// Mutating the returned slice bypasses Reset bookkeeping; only the
// kernels should use this.
func (t *Table) Raw() (state []uint8, max, thresh uint8) {
	return t.state, t.max, t.thresh
}

// CounterBits returns the counter width.
func (t *Table) CounterBits() int {
	bits := 0
	for 1<<bits-1 < int(t.max) {
		bits++
	}
	return bits
}

// Predict returns the prediction of entry idx (true = taken).
func (t *Table) Predict(idx int) bool { return t.state[idx] >= t.thresh }

// Update trains entry idx with the outcome. The saturating step is
// branchless (compare results become 0/1 masks) so the simulation hot
// loop carries no data-dependent branches of its own.
func (t *Table) Update(idx int, taken bool) {
	s := t.state[idx]
	up := b2u8(taken)
	s += up & b2u8(s < t.max)
	s -= (1 - up) & b2u8(s > 0)
	t.state[idx] = s
}

// Access is the fused predict-then-train step used by the batched
// simulation kernels: one load serves both the prediction read and the
// branchless saturating update. It is bit-identical to Predict
// followed by Update.
func (t *Table) Access(idx int, taken bool) bool {
	s := t.state[idx]
	up := b2u8(taken)
	n := s + up&b2u8(s < t.max)
	n -= (1 - up) & b2u8(s > 0)
	t.state[idx] = n
	return s >= t.thresh
}

// b2u8 converts a bool to 0/1; the compiler lowers it to a flag move,
// not a branch.
func b2u8(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// State returns the raw counter state of entry idx.
func (t *Table) State(idx int) uint8 { return t.state[idx] }

// Reset restores every counter to weakly taken.
func (t *Table) Reset() {
	for i := range t.state {
		t.state[i] = t.init
	}
}
