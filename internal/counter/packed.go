package counter

import "fmt"

// PackedBank stores 2-bit saturating counters packed 32 per uint64
// word — one quarter the footprint of Table's byte-per-counter layout.
// It exists for the batched simulation kernels (bpred/internal/sim):
// packing keeps whole sweep tiers L1-resident, and the lane update is
// branchless mask arithmetic (extract lane, saturate via compare
// masks, write back with one XOR), so the hot loop trades a byte
// load/store for a word load/shift/store with no new branches.
//
// PackedBank is only defined for the paper's 2-bit counters; wider
// machines keep the byte layout (counter.Table). State values and
// transition semantics are bit-identical to a 2-bit Table: states
// 0..3, predict taken when state >= 2, saturate at both ends.
type PackedBank struct {
	words []uint64
	size  int
}

// Packed-lane geometry: 32 two-bit lanes per word. A counter index
// idx splits into word = idx >> LaneShift and lane = idx & LaneMask;
// the lane's bit offset is (idx & LaneMask) << 1.
const (
	// LanesPerWord is the number of 2-bit counters in one uint64.
	LanesPerWord = 32
	// LaneShift converts a counter index to its word index.
	LaneShift = 5
	// LaneMask extracts the lane number from a counter index.
	LaneMask = LanesPerWord - 1
)

// packedInit is a word of 32 lanes all in the weakly-taken state 2
// (0b10 repeated), matching Table's initial state.
const packedInit = 0xAAAAAAAAAAAAAAAA

// NewPackedBank returns a bank of size counters initialized to weakly
// taken, the same initial state as a fresh 2-bit Table.
func NewPackedBank(size int) *PackedBank {
	if size < 0 {
		panic(fmt.Sprintf("counter: NewPackedBank(%d) with negative size", size))
	}
	b := &PackedBank{
		words: make([]uint64, (size+LanesPerWord-1)/LanesPerWord),
		size:  size,
	}
	for i := range b.words {
		b.words[i] = packedInit
	}
	return b
}

// PackFrom returns a bank holding the same counter states as the
// byte-per-counter slice (each value must be a 2-bit state 0..3).
// The simulation kernels use it to mirror a Table's state into packed
// form at run start; Unpack restores it at run end, so the Table
// round-trips bit-identically through a packed run.
func PackFrom(state []uint8) *PackedBank {
	b := NewPackedBank(len(state))
	for i, s := range state {
		b.Set(i, s)
	}
	return b
}

// Unpack writes every lane back into the byte-per-counter slice,
// which must have length Size().
func (b *PackedBank) Unpack(state []uint8) {
	if len(state) != b.size {
		panic(fmt.Sprintf("counter: Unpack into %d bytes, bank holds %d lanes", len(state), b.size))
	}
	for i := range state {
		state[i] = b.Get(i)
	}
}

// Size returns the number of counters.
func (b *PackedBank) Size() int { return b.size }

// Words exposes the packed backing array for the simulation kernels,
// which hoist it into a loop local (the same aliasing rationale as
// Table.Raw). Lane i lives at bits (i&LaneMask)*2 of words[i>>LaneShift].
func (b *PackedBank) Words() []uint64 { return b.words }

// Get returns the 2-bit state of lane idx.
func (b *PackedBank) Get(idx int) uint8 {
	return uint8(b.words[idx>>LaneShift] >> ((uint(idx) & LaneMask) << 1) & 3)
}

// Set overwrites lane idx with a 2-bit state.
func (b *PackedBank) Set(idx int, s uint8) {
	if s > 3 {
		panic(fmt.Sprintf("counter: PackedBank.Set state %d out of [0,3]", s))
	}
	sh := (uint(idx) & LaneMask) << 1
	w := b.words[idx>>LaneShift]
	b.words[idx>>LaneShift] = w&^(3<<sh) | uint64(s)<<sh
}

// Predict returns the prediction of lane idx (state >= 2), matching
// Table.Predict for 2-bit counters.
func (b *PackedBank) Predict(idx int) bool {
	return b.words[idx>>LaneShift]>>((uint(idx)&LaneMask)<<1)&3 >= 2
}

// Access is the fused predict-then-train step on one lane, the packed
// counterpart of Table.Access: one word load serves the prediction
// read and the branchless saturating update, and the write-back is a
// single XOR of the changed lane bits. Bit-identical to a 2-bit
// Table.Access; the simulation kernels inline this arithmetic on a
// hoisted Words() local.
func (b *PackedBank) Access(idx int, taken bool) bool {
	sh := (uint(idx) & LaneMask) << 1
	w := b.words[idx>>LaneShift]
	s := w >> sh & 3
	up := b2u64(taken)
	ns := s + up&b2u64(s < 3) - (1-up)&b2u64(s > 0)
	b.words[idx>>LaneShift] = w ^ (s^ns)<<sh
	return s >= 2
}

// Reset restores every lane to weakly taken.
func (b *PackedBank) Reset() {
	for i := range b.words {
		b.words[i] = packedInit
	}
}

// b2u64 converts a bool to 0/1; the compiler lowers it to a flag
// move, not a branch.
func b2u64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
