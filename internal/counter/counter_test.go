package counter

import (
	"testing"
	"testing/quick"
)

func TestTwoBitStateProgression(t *testing.T) {
	c := NewTwoBit()
	if c.State() != 2 {
		t.Fatalf("initial state %d, want 2 (weakly taken)", c.State())
	}
	if !c.Predict() {
		t.Fatal("weakly-taken counter should predict taken")
	}
	c.Update(true)
	if c.State() != 3 {
		t.Fatalf("after taken: state %d, want 3", c.State())
	}
	c.Update(true) // saturate at 3
	if c.State() != 3 {
		t.Fatalf("should saturate at 3, got %d", c.State())
	}
	c.Update(false)
	c.Update(false)
	c.Update(false)
	if c.State() != 0 {
		t.Fatalf("after three not-taken: state %d, want 0", c.State())
	}
	if c.Predict() {
		t.Fatal("strongly-not-taken counter predicted taken")
	}
	c.Update(false) // saturate at 0
	if c.State() != 0 {
		t.Fatalf("should saturate at 0, got %d", c.State())
	}
}

func TestTwoBitHysteresis(t *testing.T) {
	// The defining property of the two-bit counter: a single anomalous
	// outcome does not flip a strongly-biased prediction. This is why
	// loop exit branches cost one misprediction per iteration set, not
	// two.
	c := NewTwoBit()
	c.Update(true)
	c.Update(true) // strongly taken
	c.Update(false)
	if !c.Predict() {
		t.Fatal("one not-taken flipped a strongly-taken counter")
	}
	c.Update(false)
	if c.Predict() {
		t.Fatal("two not-taken should flip the prediction")
	}
}

func TestSaturatingWidths(t *testing.T) {
	for bits := 1; bits <= 8; bits++ {
		c := NewSaturating(bits, 0)
		max := 1<<bits - 1
		// Drive to saturation upward.
		for i := 0; i < max+5; i++ {
			c.Update(true)
		}
		if c.State() != max {
			t.Errorf("bits=%d: saturated state %d, want %d", bits, c.State(), max)
		}
		if !c.Predict() {
			t.Errorf("bits=%d: max state should predict taken", bits)
		}
		for i := 0; i < max+5; i++ {
			c.Update(false)
		}
		if c.State() != 0 {
			t.Errorf("bits=%d: floor state %d, want 0", bits, c.State())
		}
		if c.Predict() {
			t.Errorf("bits=%d: zero state should predict not-taken", bits)
		}
	}
}

func TestSaturatingThreshold(t *testing.T) {
	// 3-bit counter: states 0..7; 0..3 predict not-taken, 4..7 taken.
	for init := 0; init <= 7; init++ {
		c := NewSaturating(3, init)
		want := init >= 4
		if c.Predict() != want {
			t.Errorf("3-bit state %d: Predict() = %v, want %v", init, c.Predict(), want)
		}
	}
}

func TestSaturatingReset(t *testing.T) {
	c := NewSaturating(2, 1)
	c.Update(true)
	c.Update(true)
	c.Reset()
	if c.State() != 1 {
		t.Fatalf("Reset state %d, want 1", c.State())
	}
}

func TestSaturatingPanics(t *testing.T) {
	cases := []struct{ bits, init int }{
		{0, 0}, {9, 0}, {-1, 0}, {2, 4}, {2, -1},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSaturating(%d, %d) did not panic", c.bits, c.init)
				}
			}()
			NewSaturating(c.bits, c.init)
		}()
	}
}

func TestLastOutcome(t *testing.T) {
	l := NewLastOutcome(true)
	if !l.Predict() {
		t.Fatal("initial prediction should be taken")
	}
	l.Update(false)
	if l.Predict() {
		t.Fatal("after not-taken, should predict not-taken")
	}
	l.Update(true)
	if !l.Predict() {
		t.Fatal("after taken, should predict taken")
	}
	l.Reset()
	if !l.Predict() {
		t.Fatal("Reset should restore initial prediction")
	}
}

func TestFixed(t *testing.T) {
	ft := Fixed(true)
	fn := Fixed(false)
	for i := 0; i < 10; i++ {
		ft.Update(false)
		fn.Update(true)
	}
	if !ft.Predict() {
		t.Fatal("Fixed(true) must always predict taken")
	}
	if fn.Predict() {
		t.Fatal("Fixed(false) must always predict not-taken")
	}
}

func TestAgree(t *testing.T) {
	a := NewAgree(NewTwoBit())
	// Initially "weakly agree": prediction follows the bias bit.
	if !a.PredictWithBias(true) {
		t.Fatal("agreeing machine with bias=taken should predict taken")
	}
	if a.PredictWithBias(false) {
		t.Fatal("agreeing machine with bias=not-taken should predict not-taken")
	}
	// Train disagreement: outcomes opposite to bias.
	for i := 0; i < 3; i++ {
		a.UpdateWithBias(false, true)
	}
	if a.PredictWithBias(true) {
		t.Fatal("after training disagreement, prediction should invert the bias")
	}
}

// Property: the machine interface contract — Predict is stable if no
// Update happens, and a saturating counter's state never escapes its
// range under arbitrary update sequences.
func TestSaturatingRangeProperty(t *testing.T) {
	f := func(bits uint8, updates []bool) bool {
		b := int(bits%8) + 1
		c := NewSaturating(b, 0)
		max := 1<<b - 1
		for _, u := range updates {
			c.Update(u)
			if c.State() < 0 || c.State() > max {
				return false
			}
			p := c.Predict()
			if c.Predict() != p { // repeated Predict is pure
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: after k consecutive identical outcomes (k >= width), the
// counter predicts that outcome.
func TestSaturatingConvergenceProperty(t *testing.T) {
	f := func(bits uint8, dir bool) bool {
		b := int(bits%8) + 1
		c := NewSaturating(b, (1<<b)/2)
		for i := 0; i < 1<<b; i++ {
			c.Update(dir)
		}
		return c.Predict() == dir
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

var machineImpls = []struct {
	name string
	mk   func() Machine
}{
	{"two-bit", func() Machine { return NewTwoBit() }},
	{"1-bit-saturating", func() Machine { return NewSaturating(1, 0) }},
	{"3-bit-saturating", func() Machine { return NewSaturating(3, 4) }},
	{"last-outcome", func() Machine { return NewLastOutcome(false) }},
	{"fixed-taken", func() Machine { return Fixed(true) }},
}

// All Machine implementations must tolerate long update streams without
// panicking and produce deterministic predictions.
func TestMachineInterfaceContract(t *testing.T) {
	for _, impl := range machineImpls {
		t.Run(impl.name, func(t *testing.T) {
			m := impl.mk()
			for i := 0; i < 1000; i++ {
				taken := i%3 == 0
				_ = m.Predict()
				m.Update(taken)
			}
			m.Reset()
			n := impl.mk()
			if m.Predict() != n.Predict() {
				t.Error("Reset did not restore initial prediction")
			}
		})
	}
}
