package counter

import (
	"testing"
	"testing/quick"
)

func TestPackedBankInit(t *testing.T) {
	for _, size := range []int{0, 1, 31, 32, 33, 100, 1024} {
		b := NewPackedBank(size)
		if b.Size() != size {
			t.Fatalf("size %d: Size() = %d", size, b.Size())
		}
		for i := 0; i < size; i++ {
			if b.Get(i) != 2 {
				t.Fatalf("size %d: lane %d initialized to %d, want 2 (weakly taken)", size, i, b.Get(i))
			}
			if !b.Predict(i) {
				t.Fatalf("size %d: fresh lane %d predicts not-taken", size, i)
			}
		}
	}
}

// TestPackedAccessMatchesSaturating checks every (state, outcome)
// transition of the packed lane arithmetic against the reference 2-bit
// saturating machine.
func TestPackedAccessMatchesSaturating(t *testing.T) {
	for state := uint8(0); state <= 3; state++ {
		for _, taken := range []bool{false, true} {
			b := NewPackedBank(64)
			// Exercise a middle lane so neighbors can catch corruption.
			const idx = 37
			b.Set(idx, state)
			ref := NewSaturating(2, int(state))
			wantPred := ref.Predict()
			ref.Update(taken)
			gotPred := b.Access(idx, taken)
			if gotPred != wantPred {
				t.Errorf("state %d taken %v: prediction %v, want %v", state, taken, gotPred, wantPred)
			}
			if got, want := b.Get(idx), uint8(ref.State()); got != want {
				t.Errorf("state %d taken %v: next state %d, want %d", state, taken, got, want)
			}
			for i := 0; i < b.Size(); i++ {
				if i != idx && b.Get(i) != 2 {
					t.Fatalf("state %d taken %v: Access(%d) corrupted lane %d", state, taken, idx, i)
				}
			}
		}
	}
}

func TestPackedRoundTrip(t *testing.T) {
	state := make([]uint8, 101)
	for i := range state {
		state[i] = uint8(i * 7 % 4)
	}
	b := PackFrom(state)
	for i, s := range state {
		if b.Get(i) != s {
			t.Fatalf("PackFrom lost lane %d: got %d, want %d", i, b.Get(i), s)
		}
	}
	out := make([]uint8, len(state))
	b.Unpack(out)
	for i := range state {
		if out[i] != state[i] {
			t.Fatalf("Unpack lost lane %d: got %d, want %d", i, out[i], state[i])
		}
	}
}

// TestPackedVsTableProperty drives random access streams through a
// PackedBank and a 2-bit Table of the same size: every prediction and
// every final state must match.
func TestPackedVsTableProperty(t *testing.T) {
	f := func(seed uint64, accesses []uint16) bool {
		tab := NewTable(3, 4) // 128 counters
		bank := PackFrom(func() []uint8 { s, _, _ := tab.Raw(); return s }())
		for _, a := range accesses {
			idx := int(a) % tab.Size()
			taken := a&0x8000 != 0
			if bank.Access(idx, taken) != tab.Access(idx, taken) {
				return false
			}
		}
		for i := 0; i < tab.Size(); i++ {
			if bank.Get(i) != tab.State(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPackedSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Set with a 3-bit state did not panic")
		}
	}()
	NewPackedBank(32).Set(0, 4)
}

func TestPackedUnpackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Unpack into a wrong-sized slice did not panic")
		}
	}()
	NewPackedBank(32).Unpack(make([]uint8, 31))
}

func TestPackedReset(t *testing.T) {
	b := NewPackedBank(64)
	for i := 0; i < 64; i++ {
		b.Access(i, i%2 == 0)
	}
	b.Reset()
	for i := 0; i < 64; i++ {
		if b.Get(i) != 2 {
			t.Fatalf("Reset left lane %d at %d", i, b.Get(i))
		}
	}
}
