package counter

import (
	"testing"
	"testing/quick"
)

func TestTableDimensions(t *testing.T) {
	cases := []struct {
		rowBits, colBits int
		rows, cols, size int
	}{
		{0, 0, 1, 1, 1},
		{0, 4, 1, 16, 16},
		{4, 0, 16, 1, 16},
		{3, 5, 8, 32, 256},
		{6, 9, 64, 512, 32768},
	}
	for _, c := range cases {
		tab := NewTable(c.rowBits, c.colBits)
		if tab.Rows() != c.rows || tab.Cols() != c.cols || tab.Size() != c.size {
			t.Errorf("NewTable(%d,%d): rows=%d cols=%d size=%d, want %d/%d/%d",
				c.rowBits, c.colBits, tab.Rows(), tab.Cols(), tab.Size(),
				c.rows, c.cols, c.size)
		}
	}
}

func TestTableInitialPrediction(t *testing.T) {
	tab := NewTable(2, 2)
	for i := 0; i < tab.Size(); i++ {
		if !tab.Predict(i) {
			t.Fatalf("entry %d should initialize weakly taken", i)
		}
		if tab.State(i) != 2 {
			t.Fatalf("entry %d state %d, want 2", i, tab.State(i))
		}
	}
}

func TestTableIndexMasksInputs(t *testing.T) {
	tab := NewTable(2, 3) // 4 rows x 8 cols
	// Row 4+1 wraps to 1; col 8+5 wraps to 5.
	if got, want := tab.Index(5, 13), tab.Index(1, 5); got != want {
		t.Fatalf("Index(5,13)=%d, want wrap to Index(1,5)=%d", got, want)
	}
	// Flat layout: row-major.
	if got := tab.Index(1, 5); got != 1*8+5 {
		t.Fatalf("Index(1,5)=%d, want 13", got)
	}
	// All indexes in range even for huge inputs.
	for _, row := range []uint64{0, 3, 4, 1 << 40, ^uint64(0)} {
		for _, col := range []uint64{0, 7, 8, 1 << 63} {
			idx := tab.Index(row, col)
			if idx < 0 || idx >= tab.Size() {
				t.Fatalf("Index(%d,%d)=%d out of range", row, col, idx)
			}
		}
	}
}

func TestTableUpdateSaturation(t *testing.T) {
	tab := NewTable(1, 1)
	idx := tab.Index(0, 0)
	tab.Update(idx, true)
	tab.Update(idx, true)
	if tab.State(idx) != 3 {
		t.Fatalf("state %d after saturating up, want 3", tab.State(idx))
	}
	for i := 0; i < 6; i++ {
		tab.Update(idx, false)
	}
	if tab.State(idx) != 0 {
		t.Fatalf("state %d after saturating down, want 0", tab.State(idx))
	}
	if tab.Predict(idx) {
		t.Fatal("state 0 must predict not-taken")
	}
	// Entry (1,1) untouched.
	if other := tab.Index(1, 1); tab.State(other) != 2 {
		t.Fatal("update leaked into another entry")
	}
}

func TestTableMatchesScalarCounter(t *testing.T) {
	// The table's packed update rule must agree exactly with the
	// reference Saturating machine over a long pseudo-random stream.
	tab := NewTable(0, 0)
	ref := NewTwoBit()
	seq := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < 10000; i++ {
		seq = seq*6364136223846793005 + 1442695040888963407
		taken := seq>>63 == 1
		if tab.Predict(0) != ref.Predict() {
			t.Fatalf("step %d: table predicts %v, scalar %v", i, tab.Predict(0), ref.Predict())
		}
		tab.Update(0, taken)
		ref.Update(taken)
	}
}

func TestTableReset(t *testing.T) {
	tab := NewTable(2, 2)
	for i := 0; i < tab.Size(); i++ {
		tab.Update(i, false)
		tab.Update(i, false)
	}
	tab.Reset()
	for i := 0; i < tab.Size(); i++ {
		if tab.State(i) != 2 {
			t.Fatalf("entry %d not reset: state %d", i, tab.State(i))
		}
	}
}

func TestTablePanics(t *testing.T) {
	for _, c := range []struct{ r, cbits int }{{-1, 0}, {0, -1}, {16, 16}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTable(%d,%d) did not panic", c.r, c.cbits)
				}
			}()
			NewTable(c.r, c.cbits)
		}()
	}
}

// Property: state stays in 0..3 and Predict is consistent with state
// under arbitrary update streams at arbitrary indices.
func TestTableStateRangeProperty(t *testing.T) {
	tab := NewTable(3, 3)
	f := func(row, col uint64, taken bool) bool {
		idx := tab.Index(row, col)
		tab.Update(idx, taken)
		s := tab.State(idx)
		return s <= 3 && tab.Predict(idx) == (s >= 2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTablePredictUpdate(b *testing.B) {
	tab := NewTable(6, 9)
	var pc uint64
	for i := 0; i < b.N; i++ {
		pc = pc*2862933555777941757 + 3037000493
		idx := tab.Index(pc>>20, pc>>2)
		taken := tab.Predict(idx)
		tab.Update(idx, !taken)
	}
}

func TestTableBitsWidths(t *testing.T) {
	for _, bits := range []int{1, 2, 3, 4, 8} {
		tab := NewTableBits(0, 2, bits)
		if tab.CounterBits() != bits {
			t.Errorf("CounterBits() = %d, want %d", tab.CounterBits(), bits)
		}
		max := 1<<bits - 1
		// Initial state is weakly taken.
		if !tab.Predict(0) {
			t.Errorf("bits=%d: initial prediction not taken", bits)
		}
		// Saturate up and down.
		for i := 0; i < max+3; i++ {
			tab.Update(0, true)
		}
		if int(tab.State(0)) != max {
			t.Errorf("bits=%d: saturated at %d, want %d", bits, tab.State(0), max)
		}
		for i := 0; i < 2*max+3; i++ {
			tab.Update(0, false)
		}
		if tab.State(0) != 0 || tab.Predict(0) {
			t.Errorf("bits=%d: floor state %d", bits, tab.State(0))
		}
	}
}

func TestOneBitTableIsLastOutcome(t *testing.T) {
	tab := NewTableBits(0, 0, 1)
	ref := NewLastOutcome(true)
	seq := uint64(77)
	for i := 0; i < 2000; i++ {
		seq = seq*6364136223846793005 + 1442695040888963407
		taken := seq>>63 == 1
		if tab.Predict(0) != ref.Predict() {
			t.Fatalf("step %d: 1-bit table %v vs last-outcome %v", i, tab.Predict(0), ref.Predict())
		}
		tab.Update(0, taken)
		ref.Update(taken)
	}
}

func TestHysteresisReducesAliasingDamage(t *testing.T) {
	// Two agree-on-nothing branches sharing one counter: with 1-bit
	// counters every collision flips the prediction; with 3-bit
	// counters the majority branch retains control. The minority
	// branch here fires once for every four majority instances.
	run := func(bits int) int {
		tab := NewTableBits(0, 0, bits)
		wrong := 0
		for i := 0; i < 500; i++ {
			for j := 0; j < 4; j++ {
				if !tab.Predict(0) {
					wrong++
				}
				tab.Update(0, true) // majority branch: taken
			}
			// minority branch: not-taken (its own mispredicts not counted)
			tab.Update(0, false)
		}
		return wrong
	}
	oneBit := run(1)
	threeBit := run(3)
	if threeBit >= oneBit {
		t.Fatalf("hysteresis did not help: 1-bit %d wrong vs 3-bit %d wrong", oneBit, threeBit)
	}
}

func TestNewTableBitsPanics(t *testing.T) {
	for _, bits := range []int{0, 9, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTableBits(0,0,%d) did not panic", bits)
				}
			}()
			NewTableBits(0, 0, bits)
		}()
	}
}

// TestBranchlessUpdateMatchesReference sweeps every (width, state,
// outcome) combination and checks the branchless saturating step and
// the fused Access against the straightforward branchy definition.
func TestBranchlessUpdateMatchesReference(t *testing.T) {
	ref := func(s, max uint8, taken bool) uint8 {
		if taken {
			if s < max {
				return s + 1
			}
			return s
		}
		if s > 0 {
			return s - 1
		}
		return s
	}
	for bits := 1; bits <= 8; bits++ {
		max := uint8(1<<bits - 1)
		for s := 0; s <= int(max); s++ {
			for _, taken := range []bool{false, true} {
				tab := NewTableBits(0, 0, bits)
				tab.state[0] = uint8(s)
				wantPred := tab.Predict(0)
				tab.Update(0, taken)
				if got, want := tab.State(0), ref(uint8(s), max, taken); got != want {
					t.Fatalf("bits=%d state=%d taken=%v: Update -> %d, want %d", bits, s, taken, got, want)
				}

				tab.state[0] = uint8(s)
				if pred := tab.Access(0, taken); pred != wantPred {
					t.Fatalf("bits=%d state=%d: Access predicted %v, want %v", bits, s, pred, wantPred)
				}
				if got, want := tab.State(0), ref(uint8(s), max, taken); got != want {
					t.Fatalf("bits=%d state=%d taken=%v: Access -> %d, want %d", bits, s, taken, got, want)
				}
			}
		}
	}
}
