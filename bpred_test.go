package bpred_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"bpred"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	tr, err := bpred.GenerateTrace("espresso", 1, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 50_000 || tr.Name != "espresso" {
		t.Fatalf("trace %s/%d", tr.Name, tr.Len())
	}

	preds := []bpred.Predictor{
		bpred.NewAddressIndexed(10),
		bpred.NewGAg(10),
		bpred.NewGAs(6, 4),
		bpred.NewGShare(8, 2),
		bpred.NewPath(6, 4, 2),
		bpred.NewPAs(10, 0),
		bpred.NewPAsFinite(10, 0, 1024, 4),
		bpred.NewTournament(bpred.NewGShare(8, 2), bpred.NewAddressIndexed(10), 8),
		bpred.NewAgree(8, 2),
		bpred.NewGSelect(4, 6),
		bpred.NewBiMode(8, 8, 8),
		bpred.NewGSkew(8, 8),
	}
	ms := bpred.SimulateAll(preds, tr, 2_000)
	if len(ms) != len(preds) {
		t.Fatalf("%d metrics", len(ms))
	}
	for _, m := range ms {
		if m.Branches != 48_000 {
			t.Errorf("%s scored %d branches", m.Name, m.Branches)
		}
		if r := m.MispredictRate(); r <= 0 || r >= 0.5 {
			t.Errorf("%s rate %.3f", m.Name, r)
		}
	}
}

func TestPublicAPITraceFile(t *testing.T) {
	tr, _ := bpred.GenerateTrace("eqntott", 2, 5_000)
	path := filepath.Join(t.TempDir(), "t.bpt")
	if err := bpred.WriteTrace(path, tr); err != nil {
		t.Fatal(err)
	}
	back, err := bpred.ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() || back.Name != tr.Name {
		t.Fatal("trace file round trip lost data")
	}
	s := bpred.AnalyzeTrace(back)
	if s.Dynamic != 5_000 {
		t.Fatalf("stats dynamic %d", s.Dynamic)
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	if len(bpred.Workloads()) != 14 {
		t.Fatal("workload list wrong")
	}
	if _, ok := bpred.WorkloadByName("real_gcc"); !ok {
		t.Fatal("real_gcc missing")
	}
	if _, err := bpred.GenerateTrace("nonesuch", 1, 100); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := bpred.GenerateTrace("espresso", 1, 0); err == nil {
		t.Fatal("zero length accepted")
	}
}

func TestPublicAPIParseAndSweep(t *testing.T) {
	cfg, err := bpred.ParseConfig("gshare-2^8x2^2")
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := bpred.GenerateTrace("espresso", 3, 30_000)
	m := bpred.Simulate(p, tr, 1_000)
	if m.Branches == 0 {
		t.Fatal("no branches scored")
	}

	surf, err := bpred.Sweep(bpred.SweepOptions{
		Scheme: bpred.SchemeGAs, MinBits: 4, MaxBits: 6,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if best, ok := surf.BestInTier(6); !ok || best.Metrics.Branches == 0 {
		t.Fatal("sweep surface empty")
	}
}

func TestPublicAPIFrontend(t *testing.T) {
	tr, _ := bpred.GenerateTrace("mpeg_play", 4, 40_000)
	fe := bpred.SimulateFrontend(bpred.NewGShare(10, 2), bpred.NewBTB(512, 4), tr, 2_000)
	if fe.Branches == 0 || fe.RedirectRate() <= 0 {
		t.Fatalf("frontend metrics %+v", fe)
	}
	bd := bpred.SimulateBreakdown(bpred.NewAddressIndexed(10), tr, 2_000)
	if len(bd.Branches) == 0 {
		t.Fatal("breakdown empty")
	}
}

// The package example from the doc comment.
func Example() {
	tr, _ := bpred.GenerateTrace("espresso", 1, 200_000)
	p := bpred.NewGShare(11, 2)
	m := bpred.Simulate(p, tr, tr.Len()/20)
	fmt.Println(m.Name)
	// Output:
	// gshare-2^11x2^2
}

func TestGenerateCustom(t *testing.T) {
	p := bpred.Profile{
		Name: "mine", Static: 500, Hot50: 10, Hot90: 80,
		BranchFrac: 0.12, LoopFrac: 0.2, PatternFrac: 0.1, CorrFrac: 0.2,
		HighBiasFrac: 0.8, PhasedFrac: 0.5, TripMean: 12,
	}
	tr, err := bpred.GenerateCustom(p, 1, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 20_000 || tr.Name != "mine" {
		t.Fatalf("trace %s/%d", tr.Name, tr.Len())
	}
	m := bpred.Simulate(bpred.NewGShare(8, 2), tr, 1_000)
	if m.MispredictRate() <= 0 {
		t.Fatal("no signal from custom workload")
	}
	p.TripMean = 0
	if _, err := bpred.GenerateCustom(p, 1, 100); err == nil {
		t.Fatal("invalid custom profile accepted")
	}
	p.TripMean = 12
	if _, err := bpred.GenerateCustom(p, 1, 0); err == nil {
		t.Fatal("zero length accepted")
	}
}

func TestInterleaveWorkloads(t *testing.T) {
	tr, err := bpred.InterleaveWorkloads([]string{"compress", "eqntott"}, 100, 10_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 10_000 {
		t.Fatalf("length %d", tr.Len())
	}
}
