// Quickstart: build a synthetic workload, run four classic predictors
// over it, and print their misprediction rates. Uses only the public
// bpred API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"bpred"
)

func main() {
	// 1. Pick a workload. The library ships profiles calibrated to
	//    the fourteen benchmarks of Sechrest/Lee/Mudge (ISCA '96);
	//    espresso is the classic small-footprint SPECint92 program.
	trace, err := bpred.GenerateTrace("espresso", 1 /* seed */, 1_000_000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("workload: %s, %d branches\n\n", trace.Name, trace.Len())

	// 2. Build predictors. Every scheme the paper studies (and the
	//    dealiased designs it motivated) has a constructor.
	predictors := []bpred.Predictor{
		bpred.NewAddressIndexed(12), // bimodal, 4096 counters
		bpred.NewGShare(8, 4),       // gshare, 256 rows x 16 cols
		bpred.NewPAs(10, 2),         // PAs, ideal first level
		bpred.NewTournament( // McFarling combining
			bpred.NewGShare(10, 2),
			bpred.NewAddressIndexed(12),
			10,
		),
	}

	// 3. Simulate. SimulateAll fans the trace out in parallel; the
	//    first 5% of branches warm the tables unscored.
	for _, m := range bpred.SimulateAll(predictors, trace, trace.Len()/20) {
		fmt.Printf("  %-40s %6.2f%% mispredicted\n", m.Name, 100*m.MispredictRate())
	}
}
