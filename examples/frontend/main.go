// Frontend: model a complete fetch front end — direction predictor
// plus branch target buffer — and translate its redirect rate into
// pipeline performance, the system-level step the paper defers to the
// literature it cites.
//
//	go run ./examples/frontend
//
// Observe that (a) redirects exceed direction mispredictions because
// the BTB sometimes lacks the target of a correctly-predicted-taken
// branch, and (b) the same redirect rate costs far more on a deep
// speculative pipeline than on a classic five-stage one.
package main

import (
	"fmt"

	"bpred"
)

func main() {
	trace, err := bpred.GenerateTrace("gs", 1, 1_000_000) // ghostscript: large IBS workload
	if err != nil {
		panic(err)
	}
	profile, _ := bpred.WorkloadByName("gs")

	fmt.Printf("workload: %s (%d branches, %.1f%% of instructions)\n\n",
		trace.Name, trace.Len(), 100*profile.BranchFrac)
	fmt.Printf("%-28s %9s %9s %8s %11s %8s\n",
		"front end", "dir-miss", "redirect", "btb-hit", "classicCPI", "deepCPI")

	btbs := []int{256, 1024, 8192}
	for _, entries := range btbs {
		fe := bpred.SimulateFrontend(
			bpred.NewGShare(11, 2),
			bpred.NewBTB(entries, 4),
			trace,
			trace.Len()/20,
		)
		classic := bpred.EstimateCPI(bpred.ClassicPipeline, profile.BranchFrac, fe.RedirectRate())
		deep := bpred.EstimateCPI(bpred.DeepPipeline, profile.BranchFrac, fe.RedirectRate())
		fmt.Printf("gshare-2^11x2^2 + BTB %-5d %8.2f%% %8.2f%% %7.1f%% %11.3f %8.3f\n",
			entries, 100*fe.DirectionRate(), 100*fe.RedirectRate(),
			100*fe.BTBHitRate, classic.CPI(), deep.CPI())
	}

	fmt.Println("\nBTB growth converges redirects down to the direction-misprediction floor;")
	fmt.Println("after that, only a better direction predictor helps (see examples/designspace).")
}
