// Custom: plug your own predictor into the simulation harness by
// implementing bpred.Predictor, and race it against the library's
// schemes.
//
//	go run ./examples/custom
//
// The custom predictor here is a loop predictor: it tracks each
// branch's run length of consecutive taken outcomes and predicts
// not-taken when the current run reaches the branch's last observed
// trip count — a structure none of the paper's table-based schemes
// can express.
package main

import (
	"fmt"

	"bpred"
)

// loopPredictor predicts loop exits from learned trip counts, but
// only for branches that look like loops (backward targets) and whose
// trip count has repeated exactly — everything else falls back to a
// bimodal table.
type loopPredictor struct {
	fallback bpred.Predictor
	loops    map[uint64]*loopState
}

type loopState struct {
	trip      int // last observed run of taken outcomes
	run       int // current run
	confident bool
}

func newLoopPredictor(colBits int) *loopPredictor {
	return &loopPredictor{
		fallback: bpred.NewAddressIndexed(colBits),
		loops:    make(map[uint64]*loopState),
	}
}

func (l *loopPredictor) Predict(b bpred.Branch) bool {
	base := l.fallback.Predict(b)
	if b.Target >= b.PC {
		return base // not a loop branch
	}
	s := l.loops[b.PC]
	if s == nil || !s.confident || s.trip < 2 {
		return base
	}
	// Confident fixed-trip loop: taken until the learned trip count.
	return s.run < s.trip
}

func (l *loopPredictor) Update(b bpred.Branch) {
	l.fallback.Update(b)
	if b.Target >= b.PC {
		return
	}
	s := l.loops[b.PC]
	if s == nil {
		s = &loopState{}
		l.loops[b.PC] = s
	}
	if b.Taken {
		s.run++
		return
	}
	// Exit observed: confident only when the trip count repeats.
	s.confident = s.run == s.trip
	s.trip = s.run
	s.run = 0
}

func (l *loopPredictor) Name() string { return "custom-loop+bimodal" }

func main() {
	trace, err := bpred.GenerateTrace("video_play", 1, 1_000_000) // loop-heavy decoder
	if err != nil {
		panic(err)
	}

	contenders := []bpred.Predictor{
		bpred.NewAddressIndexed(12),
		bpred.NewGShare(10, 2),
		bpred.NewPAsFinite(12, 0, 1024, 4),
		newLoopPredictor(12),
	}
	fmt.Printf("workload: %s (%d branches)\n\n", trace.Name, trace.Len())
	for _, m := range bpred.SimulateAll(contenders, trace, trace.Len()/20) {
		fmt.Printf("  %-28s %6.2f%% mispredicted\n", m.Name, 100*m.MispredictRate())
	}
	fmt.Println("\nfixed-trip loops reward the custom structure; jittered trips do not —")
	fmt.Println("rerun with other workloads (see `go run ./cmd/bptrace list`).")
}
