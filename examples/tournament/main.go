// Tournament: the direction the paper's conclusion points to —
// combining predictors. A McFarling-style tournament of gshare and
// PAs is raced against its own components and an agree predictor
// across all fourteen benchmark profiles.
//
//	go run ./examples/tournament
//
// The tournament should track the better component per workload, and
// the agree predictor shows how recoding counters as agree/disagree
// bits defuses the destructive aliasing this paper diagnosed.
package main

import (
	"fmt"

	"bpred"
)

func main() {
	const n = 600_000
	fmt.Printf("%-11s %10s %10s %12s %10s\n",
		"workload", "gshare", "PAs(1k)", "tournament", "agree")
	for _, profile := range bpred.Workloads() {
		tr, err := bpred.GenerateTrace(profile.Name, 1, n)
		if err != nil {
			panic(err)
		}
		preds := []bpred.Predictor{
			bpred.NewGShare(11, 2),
			bpred.NewPAsFinite(12, 0, 1024, 4),
			bpred.NewTournament(
				bpred.NewGShare(11, 2),
				bpred.NewPAsFinite(12, 0, 1024, 4),
				11,
			),
			bpred.NewAgree(11, 2),
		}
		ms := bpred.SimulateAll(preds, tr, n/20)
		fmt.Printf("%-11s %9.2f%% %9.2f%% %11.2f%% %9.2f%%\n",
			profile.Name,
			100*ms[0].MispredictRate(),
			100*ms[1].MispredictRate(),
			100*ms[2].MispredictRate(),
			100*ms[3].MispredictRate())
	}
	fmt.Println("\n(13-bit-counter budgets differ slightly per column; the point is the ordering:")
	fmt.Println(" the tournament tracks its better component, agree defuses aliasing.)")
}
