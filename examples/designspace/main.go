// Designspace: explore the row/column design space of a global-history
// predictor for one workload, the way the paper's Figures 4-6 do, and
// watch aliasing trade off against correlation.
//
//	go run ./examples/designspace
//
// For small tables the best configuration hugs the address-indexed
// edge (aliasing dominates); for large tables history bits pay off —
// the paper's central result.
package main

import (
	"fmt"

	"bpred"
)

func main() {
	trace, err := bpred.GenerateTrace("mpeg_play", 1, 1_500_000)
	if err != nil {
		panic(err)
	}

	// Sweep every 2^r x 2^c split of every counter budget from 16 to
	// 4096, with aliasing meters attached.
	surface, err := bpred.Sweep(bpred.SweepOptions{
		Scheme:  bpred.SchemeGShare,
		MinBits: 4,
		MaxBits: 12,
		Metered: true,
		Sim:     bpred.SimOptions{Warmup: trace.Len() / 20},
	}, trace)
	if err != nil {
		panic(err)
	}

	// The full misprediction grid, best-in-tier starred.
	fmt.Println(bpred.RenderSurface(surface))

	// The same grid as aliasing rates: watch conflicts grow as rows
	// displace columns.
	fmt.Println(bpred.RenderAliasSurface(surface))

	// Best configuration per budget: the "what should I build with N
	// counters?" answer.
	fmt.Println("best configuration per counter budget:")
	for _, pt := range surface.BestPerTier() {
		fmt.Printf("  %6d counters: %-18s %5.2f%% mispredicted, %5.2f%% of accesses aliased\n",
			pt.Config.Counters(), pt.Metrics.Name,
			100*pt.Metrics.MispredictRate(), 100*pt.Metrics.Alias.ConflictRate())
	}
}
