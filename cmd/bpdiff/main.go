// bpdiff differentially verifies the simulation engine against the
// independent reference model (internal/refmodel): it replays a trace
// through both sides and reports the first diverging branch with full
// predictor-state dumps.
//
// Usage:
//
//	bpdiff -predictor 'gshare-2^8x2^2' -workload espresso -meter
//	bpdiff -predictor 'PAs(128/4w)-2^6x2^2' -trace foo.bpt -warmup 1000
//	bpdiff -battery -synth -seed 7 -n 100000
//
// One of -predictor or -battery selects what to verify; one of
// -trace, -workload, or -synth selects the branch stream. On a
// divergence the tool first replays the generic engine path in
// lockstep with the oracle (exact index plus both state dumps); if
// the generic path agrees, the batched kernel is the suspect and the
// divergence index is recovered by prefix bisection.
//
// Exit status: 0 when every comparison matched, 1 on a divergence,
// 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"bpred/internal/core"
	"bpred/internal/refmodel/diff"
	"bpred/internal/sim"
	"bpred/internal/trace"
	"bpred/internal/workload"
)

func main() {
	var (
		predictor    = flag.String("predictor", "", "canonical predictor name, e.g. 'gshare-2^8x2^2'")
		battery      = flag.Bool("battery", false, "verify the built-in cross-family configuration battery")
		traceFile    = flag.String("trace", "", "branch trace file (BPT1)")
		workloadName = flag.String("workload", "", "synthetic benchmark name (see bptrace -list)")
		synth        = flag.Bool("synth", false, "use the harness's adversarial synthetic trace")
		n            = flag.Int("n", 200_000, "branches for -synth/-workload streams")
		seed         = flag.Uint64("seed", 1996, "seed for -synth/-workload streams")
		warmup       = flag.Int("warmup", 0, "unscored leading branches")
		chunk        = flag.Int("chunk", 0, "engine chunk size (0 = default)")
		meter        = flag.Bool("meter", false, "also compare the aliasing taxonomy (implied by -battery)")
		maxDump      = flag.Int("dump", 16, "max counter lines per state dump (0 = uncapped)")
	)
	flag.Parse()

	tr, err := loadTrace(*traceFile, *workloadName, *synth, *seed, *n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bpdiff: %v\n", err)
		os.Exit(2)
	}

	var cfgs []core.Config
	switch {
	case *predictor != "" && *battery:
		fmt.Fprintln(os.Stderr, "bpdiff: use -predictor or -battery, not both")
		os.Exit(2)
	case *predictor != "":
		cfg, err := core.ParseConfig(*predictor)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpdiff: %v\n", err)
			os.Exit(2)
		}
		cfg.Metered = *meter
		cfgs = []core.Config{cfg}
	case *battery:
		cfgs = diff.Battery(true)
	default:
		fmt.Fprintln(os.Stderr, "bpdiff: one of -predictor or -battery is required")
		os.Exit(2)
	}

	opt := sim.Options{Warmup: *warmup, Chunk: *chunk}
	diverged := false
	for _, cfg := range cfgs {
		res, err := diff.Compare(cfg, tr, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpdiff: %v\n", err)
			os.Exit(2)
		}
		fmt.Println(res.String())
		if res.Equal() {
			continue
		}
		diverged = true
		report(cfg, tr, opt, *maxDump)
	}
	if diverged {
		os.Exit(1)
	}
}

// report localizes a whole-trace divergence: lockstep against the
// generic path first, prefix bisection of the batched kernel second.
func report(cfg core.Config, tr *trace.Trace, opt sim.Options, maxDump int) {
	div, err := diff.LockstepConfig(cfg, tr, maxDump)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bpdiff: lockstep: %v\n", err)
		return
	}
	if div != nil {
		fmt.Print(div.String())
		return
	}
	fmt.Println("generic engine path agrees with the oracle; bisecting the batched kernel...")
	idx, ok, err := diff.BisectBatched(cfg, tr, opt)
	switch {
	case err != nil:
		fmt.Fprintf(os.Stderr, "bpdiff: bisect: %v\n", err)
	case ok:
		fmt.Printf("batched kernel first diverges within the prefix ending at branch %d\n", idx)
	default:
		fmt.Println("divergence did not reproduce under bisection (warmup/chunk sensitive?)")
	}
}

func loadTrace(traceFile, workloadName string, synth bool, seed uint64, n int) (*trace.Trace, error) {
	picked := 0
	for _, on := range []bool{traceFile != "", workloadName != "", synth} {
		if on {
			picked++
		}
	}
	if picked != 1 {
		return nil, fmt.Errorf("exactly one of -trace, -workload, or -synth is required")
	}
	if n <= 0 {
		return nil, fmt.Errorf("-n must be positive")
	}
	switch {
	case traceFile != "":
		return trace.ReadFile(traceFile)
	case workloadName != "":
		p, ok := workload.ProfileByName(workloadName)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q; known: %v", workloadName, workload.ProfileNames())
		}
		return workload.Generate(p, seed, n), nil
	default:
		return diff.SynthTrace(seed, n), nil
	}
}
