// bptrace generates, inspects, and characterizes branch traces.
//
// Usage:
//
//	bptrace list                          # available synthetic workloads
//	bptrace gen -workload espresso -n 1000000 -o espresso.bpt
//	bptrace stat -i espresso.bpt          # Table 1/2-style characterization
//	bptrace stat -workload mpeg_play -n 500000
//	bptrace convert -i espresso.bpt -o espresso.bpt2
//	bptrace convert -i espresso.bpt2 -o espresso.bpt -to bpt1
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"bpred/internal/trace"
	"bpred/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		cmdList()
	case "gen":
		cmdGen(os.Args[2:])
	case "stat":
		cmdStat(os.Args[2:])
	case "describe":
		cmdDescribe(os.Args[2:])
	case "convert":
		cmdConvert(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `bptrace: branch trace tool
subcommands:
  list                              list synthetic workload profiles
  gen  -workload NAME -n N -o FILE  generate a trace file
  stat (-i FILE | -workload NAME)   characterize a trace
  describe -workload NAME           show a synthetic program's static structure
  convert -i FILE -o FILE           transcode between BPT1 and BPT2 (streaming)`)
}

func cmdList() {
	fmt.Printf("%-11s %-11s %8s %7s %7s %14s\n",
		"name", "suite", "static", "hot50", "hot90", "paper-dyn-br")
	for _, p := range workload.Profiles() {
		fmt.Printf("%-11s %-11s %8d %7d %7d %14d\n",
			p.Name, p.Suite, p.Static, p.Hot50, p.Hot90, p.DynamicBranches)
	}
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	name := fs.String("workload", "", "synthetic workload name")
	n := fs.Int("n", 1_000_000, "branch count")
	seed := fs.Uint64("seed", 1996, "workload seed")
	out := fs.String("o", "", "output trace file")
	fs.Parse(args)
	if *name == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "bptrace gen: -workload and -o are required")
		os.Exit(2)
	}
	p, ok := workload.ProfileByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "bptrace gen: unknown workload %q\n", *name)
		os.Exit(2)
	}
	tr := workload.Generate(p, *seed, *n)
	if err := trace.WriteFile(*out, tr); err != nil {
		fmt.Fprintf(os.Stderr, "bptrace gen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d branches (%s)\n", *out, tr.Len(), tr.Name)
}

func cmdDescribe(args []string) {
	fs := flag.NewFlagSet("describe", flag.ExitOnError)
	name := fs.String("workload", "", "synthetic workload name")
	seed := fs.Uint64("seed", 1996, "workload seed")
	fs.Parse(args)
	if *name == "" {
		fmt.Fprintln(os.Stderr, "bptrace describe: -workload is required")
		os.Exit(2)
	}
	p, ok := workload.ProfileByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "bptrace describe: unknown workload %q\n", *name)
		os.Exit(2)
	}
	fmt.Print(workload.Build(p, *seed).Summarize().Render())
}

// cmdConvert transcodes a trace between the row-oriented BPT1 format
// and the columnar block-compressed BPT2 format, streaming one block
// at a time — it never holds the decoded trace, so converting a
// multi-gigabyte file costs a few kilobytes of memory. The content
// digest is format-independent and printed for verification.
func cmdConvert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (BPT1 or BPT2, sniffed)")
	out := fs.String("o", "", "output trace file")
	to := fs.String("to", "bpt2", "target format: bpt1 or bpt2")
	blockLen := fs.Int("block", 0, "BPT2 records per block (0 = default)")
	fs.Parse(args)
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "bptrace convert: -i and -o are required")
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "bptrace convert: %v\n", err)
		os.Remove(*out)
		os.Exit(1)
	}

	rd, err := trace.OpenFile(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bptrace convert: %v\n", err)
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bptrace convert: %v\n", err)
		os.Exit(1)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	type branchWriter interface {
		WriteBranch(trace.Branch) error
		Close() error
	}
	var w branchWriter
	switch strings.ToLower(*to) {
	case "bpt2":
		w, err = trace.NewWriter2(bw, rd.Name(), rd.Instructions(), rd.Count(), *blockLen)
	case "bpt1":
		w, err = trace.NewWriter(bw, rd.Name(), rd.Instructions(), rd.Count())
	default:
		fmt.Fprintf(os.Stderr, "bptrace convert: unknown -to %q (want bpt1 or bpt2)\n", *to)
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}

	dw := trace.NewDigestWriter(rd.Name(), rd.Instructions(), rd.Count())
	buf := make([]trace.Branch, 4096)
	var n uint64
	for {
		batch := rd.NextBatch(buf)
		if len(batch) == 0 {
			break
		}
		n += uint64(len(batch))
		for _, b := range batch {
			dw.WriteBranch(b)
			if err := w.WriteBranch(b); err != nil {
				fail(err)
			}
		}
	}
	if err := rd.Err(); err != nil {
		fail(err)
	}
	if n != rd.Count() {
		fail(fmt.Errorf("%s: truncated: %d of %d records", *in, n, rd.Count()))
	}
	if err := rd.Close(); err != nil {
		fail(err)
	}
	if err := w.Close(); err != nil {
		fail(err)
	}
	if err := bw.Flush(); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	inSt, _ := os.Stat(*in)
	outSt, _ := os.Stat(*out)
	sum := dw.Sum()
	fmt.Printf("wrote %s: %d branches, %d -> %d bytes, digest %x\n",
		*out, n, inSt.Size(), outSt.Size(), sum[:])
}

func cmdStat(args []string) {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	in := fs.String("i", "", "input trace file")
	name := fs.String("workload", "", "synthetic workload name (alternative to -i)")
	n := fs.Int("n", 1_000_000, "branch count for synthetic workloads")
	seed := fs.Uint64("seed", 1996, "workload seed")
	fs.Parse(args)

	var tr *trace.Trace
	switch {
	case *in != "" && *name != "":
		fmt.Fprintln(os.Stderr, "bptrace stat: use -i or -workload, not both")
		os.Exit(2)
	case *in != "":
		var err error
		tr, err = trace.ReadFile(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bptrace stat: %v\n", err)
			os.Exit(1)
		}
	case *name != "":
		p, ok := workload.ProfileByName(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "bptrace stat: unknown workload %q\n", *name)
			os.Exit(2)
		}
		tr = workload.Generate(p, *seed, *n)
	default:
		fmt.Fprintln(os.Stderr, "bptrace stat: -i or -workload is required")
		os.Exit(2)
	}

	s := trace.AnalyzeTrace(tr)
	fmt.Printf("trace:                 %s\n", s.Name)
	fmt.Printf("dynamic branches:      %d\n", s.Dynamic)
	fmt.Printf("represented instrs:    %d (branches %.1f%%)\n", s.Instructions, 100*s.BranchFraction())
	fmt.Printf("static branches:       %d\n", s.Static)
	fmt.Printf("taken rate:            %.2f%%\n", 100*s.TakenRate())
	fmt.Printf("branches for 50%%:      %d\n", s.StaticFor(0.5))
	fmt.Printf("branches for 90%%:      %d\n", s.StaticFor(0.9))
	b := s.CoverageBuckets([]float64{0.50, 0.40, 0.09, 0.01})
	fmt.Printf("coverage bands:        first 50%%: %d | next 40%%: %d | next 9%%: %d | last 1%%: %d\n",
		b[0], b[1], b[2], b[3])
	fmt.Printf(">=95%%-biased weight:   %.1f%% of instances\n", 100*s.HighlyBiasedFraction(0.95))
	top := s.Profiles()
	if len(top) > 5 {
		top = top[:5]
	}
	fmt.Println("hottest branches:")
	for _, p := range top {
		fmt.Printf("  %#010x  %9d instances  bias %.3f\n", p.PC, p.Count, p.Bias())
	}
}
