// bptrace generates, inspects, and characterizes branch traces.
//
// Usage:
//
//	bptrace list                          # available synthetic workloads
//	bptrace gen -workload espresso -n 1000000 -o espresso.bpt
//	bptrace stat -i espresso.bpt          # Table 1/2-style characterization
//	bptrace stat -workload mpeg_play -n 500000
package main

import (
	"flag"
	"fmt"
	"os"

	"bpred/internal/trace"
	"bpred/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		cmdList()
	case "gen":
		cmdGen(os.Args[2:])
	case "stat":
		cmdStat(os.Args[2:])
	case "describe":
		cmdDescribe(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `bptrace: branch trace tool
subcommands:
  list                              list synthetic workload profiles
  gen  -workload NAME -n N -o FILE  generate a trace file
  stat (-i FILE | -workload NAME)   characterize a trace
  describe -workload NAME           show a synthetic program's static structure`)
}

func cmdList() {
	fmt.Printf("%-11s %-11s %8s %7s %7s %14s\n",
		"name", "suite", "static", "hot50", "hot90", "paper-dyn-br")
	for _, p := range workload.Profiles() {
		fmt.Printf("%-11s %-11s %8d %7d %7d %14d\n",
			p.Name, p.Suite, p.Static, p.Hot50, p.Hot90, p.DynamicBranches)
	}
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	name := fs.String("workload", "", "synthetic workload name")
	n := fs.Int("n", 1_000_000, "branch count")
	seed := fs.Uint64("seed", 1996, "workload seed")
	out := fs.String("o", "", "output trace file")
	fs.Parse(args)
	if *name == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "bptrace gen: -workload and -o are required")
		os.Exit(2)
	}
	p, ok := workload.ProfileByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "bptrace gen: unknown workload %q\n", *name)
		os.Exit(2)
	}
	tr := workload.Generate(p, *seed, *n)
	if err := trace.WriteFile(*out, tr); err != nil {
		fmt.Fprintf(os.Stderr, "bptrace gen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d branches (%s)\n", *out, tr.Len(), tr.Name)
}

func cmdDescribe(args []string) {
	fs := flag.NewFlagSet("describe", flag.ExitOnError)
	name := fs.String("workload", "", "synthetic workload name")
	seed := fs.Uint64("seed", 1996, "workload seed")
	fs.Parse(args)
	if *name == "" {
		fmt.Fprintln(os.Stderr, "bptrace describe: -workload is required")
		os.Exit(2)
	}
	p, ok := workload.ProfileByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "bptrace describe: unknown workload %q\n", *name)
		os.Exit(2)
	}
	fmt.Print(workload.Build(p, *seed).Summarize().Render())
}

func cmdStat(args []string) {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	in := fs.String("i", "", "input trace file")
	name := fs.String("workload", "", "synthetic workload name (alternative to -i)")
	n := fs.Int("n", 1_000_000, "branch count for synthetic workloads")
	seed := fs.Uint64("seed", 1996, "workload seed")
	fs.Parse(args)

	var tr *trace.Trace
	switch {
	case *in != "" && *name != "":
		fmt.Fprintln(os.Stderr, "bptrace stat: use -i or -workload, not both")
		os.Exit(2)
	case *in != "":
		var err error
		tr, err = trace.ReadFile(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bptrace stat: %v\n", err)
			os.Exit(1)
		}
	case *name != "":
		p, ok := workload.ProfileByName(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "bptrace stat: unknown workload %q\n", *name)
			os.Exit(2)
		}
		tr = workload.Generate(p, *seed, *n)
	default:
		fmt.Fprintln(os.Stderr, "bptrace stat: -i or -workload is required")
		os.Exit(2)
	}

	s := trace.AnalyzeTrace(tr)
	fmt.Printf("trace:                 %s\n", s.Name)
	fmt.Printf("dynamic branches:      %d\n", s.Dynamic)
	fmt.Printf("represented instrs:    %d (branches %.1f%%)\n", s.Instructions, 100*s.BranchFraction())
	fmt.Printf("static branches:       %d\n", s.Static)
	fmt.Printf("taken rate:            %.2f%%\n", 100*s.TakenRate())
	fmt.Printf("branches for 50%%:      %d\n", s.StaticFor(0.5))
	fmt.Printf("branches for 90%%:      %d\n", s.StaticFor(0.9))
	b := s.CoverageBuckets([]float64{0.50, 0.40, 0.09, 0.01})
	fmt.Printf("coverage bands:        first 50%%: %d | next 40%%: %d | next 9%%: %d | last 1%%: %d\n",
		b[0], b[1], b[2], b[3])
	fmt.Printf(">=95%%-biased weight:   %.1f%% of instances\n", 100*s.HighlyBiasedFraction(0.95))
	top := s.Profiles()
	if len(top) > 5 {
		top = top[:5]
	}
	fmt.Println("hottest branches:")
	for _, p := range top {
		fmt.Printf("  %#010x  %9d instances  bias %.3f\n", p.PC, p.Count, p.Bias())
	}
}
