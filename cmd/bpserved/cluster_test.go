package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"bpred/internal/trace"
	"bpred/internal/workload"
)

// TestRoleFlagValidation pins the CLI contract for the cluster roles:
// misconfiguration is a usage error (exit 2) with a diagnostic naming
// the broken flag, before any socket is bound or directory created.
func TestRoleFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the server binary")
	}
	bin := buildBinary(t)
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"unknown role", []string{"-role", "bogus", "-data", t.TempDir()}, `unknown -role "bogus"`},
		{"worker without join", []string{"-role", "worker"}, "-join"},
		{"coordinator without data", []string{"-role", "coordinator"}, "-data required"},
		{"single without data", nil, "-data required"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("args %v: err = %v (output %q), want an exit error", tc.args, err, out)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Fatalf("args %v: exit = %d, want 2\n%s", tc.args, code, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("args %v: stderr = %q, want it to contain %q", tc.args, out, tc.want)
			}
		})
	}
}

// startWorkerProc launches a -role worker process dialed into join
// and waits for its joining banner.
func startWorkerProc(t *testing.T, bin, node, join string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-role", "worker", "-node", node, "-join", join)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatalf("StderrPipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting worker: %v", err)
	}
	joined := make(chan struct{}, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "joining") {
				select {
				case joined <- struct{}{}:
				default:
				}
			}
		}
	}()
	select {
	case <-joined:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("worker never announced it was joining")
	}
	return cmd
}

// TestClusterCoordinatorWorkerSmoke is the binary-level cluster path:
// a -role coordinator process plus one external -role worker process
// dialed in over HTTP complete a job end to end, and both shut down
// cleanly on SIGTERM.
func TestClusterCoordinatorWorkerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the server binary")
	}
	bin := buildBinary(t)
	srv := startServer(t, bin, t.TempDir(), "-role", "coordinator", "-node", "c1")
	worker := startWorkerProc(t, bin, "wx", srv.url)

	prof, ok := workload.ProfileByName("espresso")
	if !ok {
		prof = workload.Profiles()[0]
	}
	tr := workload.Generate(prof, 42, 50_000)
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, tr.Name, tr.Instructions, uint64(tr.Len()))
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, b := range tr.Branches {
		if err := w.WriteBranch(b); err != nil {
			t.Fatalf("WriteBranch: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	resp, err := http.Post(srv.url+"/v1/traces", "application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	var info struct {
		Digest string `json:"digest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decoding upload response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status = %d", resp.StatusCode)
	}

	spec := fmt.Sprintf(`{"trace":%q,"scheme":"gshare","tiers":[4,5,6]}`, info.Digest)
	resp, err = http.Post(srv.url+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var ack struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatalf("decoding submit ack: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}

	var st struct {
		State string `json:"state"`
		Error string `json:"error"`
	}
	deadline := time.Now().Add(120 * time.Second)
	for st.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.State)
		}
		if st.State == "failed" || st.State == "canceled" {
			t.Fatalf("job ended %q: %s", st.State, st.Error)
		}
		getJSON(t, srv.url+"/v1/jobs/"+ack.ID, &st)
		time.Sleep(10 * time.Millisecond)
	}

	var res struct {
		Partial    bool `json:"partial"`
		CellsTotal int  `json:"cells_total"`
		Cells      []struct {
			Fingerprint string `json:"fingerprint"`
		} `json:"cells"`
	}
	if code := getJSON(t, srv.url+"/v1/jobs/"+ack.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result status = %d", code)
	}
	if res.Partial || res.CellsTotal == 0 || len(res.Cells) != res.CellsTotal {
		t.Fatalf("cluster job result = partial=%v cells=%d/%d", res.Partial, len(res.Cells), res.CellsTotal)
	}

	// Worker first: SIGTERM must yield exit 0 and the stats banner.
	if err := worker.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM worker: %v", err)
	}
	wdone := make(chan error, 1)
	go func() { wdone <- worker.Wait() }()
	select {
	case err := <-wdone:
		if err != nil {
			t.Fatalf("worker exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		worker.Process.Kill()
		t.Fatal("worker did not exit after SIGTERM")
	}
	srv.sigterm(t)
}
