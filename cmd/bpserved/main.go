// bpserved serves branch-predictor sweeps over HTTP: upload BPT1
// traces, submit sweep jobs, poll status, stream progress, and fetch
// results, with all simulation deduplicated through the shared BPC1
// checkpoint cache.
//
// Usage:
//
//	bpserved -data ./bpserved-data                 # listen on :8149
//	bpserved -listen 127.0.0.1:0 -workers 4        # ephemeral port
//
// The chosen listen address is printed to stderr as
// "bpserved: listening on ADDR" once the socket is bound, so wrappers
// can parse it when using port 0. SIGINT/SIGTERM drains gracefully:
// running jobs stop at their next chunk boundary, checkpoints are
// flushed, the job table is persisted, and the process exits 0; a
// restart over the same -data directory resumes interrupted jobs and
// keeps serving completed results.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bpred/internal/service"
)

func main() {
	var (
		listen   = flag.String("listen", ":8149", "listen address (host:port; port 0 picks a free port)")
		dataDir  = flag.String("data", "", "data directory for traces, checkpoints, results, and the job table (required)")
		workers  = flag.Int("workers", 0, "sweep worker pool size (0 = 2)")
		queue    = flag.Int("queue", 0, "job queue depth before submissions see 429 (0 = 64)")
		maxBr    = flag.Uint64("max-trace-branches", 0, "per-trace record cap (0 = 16M)")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "how long a shutdown waits for running jobs to reach a chunk boundary")
	)
	flag.Parse()

	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "bpserved: -data required")
		os.Exit(2)
	}

	m, err := service.NewManager(service.Config{
		DataDir:          *dataDir,
		Workers:          *workers,
		QueueDepth:       *queue,
		MaxTraceBranches: *maxBr,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bpserved: %v\n", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bpserved: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bpserved: listening on %s\n", ln.Addr())

	srv := &http.Server{Handler: service.NewServer(m)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "bpserved: %v: draining\n", s)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "bpserved: %v\n", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	// Drain first (stop accepting work, interrupt jobs at the next
	// chunk boundary, flush checkpoints, persist the job table), then
	// close the HTTP side.
	if err := m.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "bpserved: drain: %v\n", err)
		srv.Close()
		os.Exit(1)
	}
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "bpserved: shutdown: %v\n", err)
	}
	<-errCh // Serve has returned http.ErrServerClosed
	fmt.Fprintln(os.Stderr, "bpserved: drained, exiting")
}
