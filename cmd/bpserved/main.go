// bpserved serves branch-predictor sweeps over HTTP: upload BPT1
// traces, submit sweep jobs, poll status, stream progress, and fetch
// results, with all simulation deduplicated through the shared BPC1
// checkpoint cache.
//
// Usage:
//
//	bpserved -data ./bpserved-data                 # single-node on :8149
//	bpserved -listen 127.0.0.1:0 -workers 4        # ephemeral port
//
// Cluster mode splits the process into a coordinator and workers:
//
//	bpserved -role coordinator -data ./coord-data
//	bpserved -role worker -node w1 -join http://localhost:8149
//	bpserved -role worker -node w2 -join http://localhost:8149
//
// The coordinator serves the normal sweep API, consistent-hashes the
// cells of every job across joined workers (plus one embedded local
// worker so a lone coordinator still completes jobs), and keeps the
// authoritative BPC1 ledger; workers are stateless pullers that dial
// in over HTTP — no inbound connectivity to them is needed.
//
// The chosen listen address is printed to stderr as
// "bpserved: listening on ADDR" once the socket is bound, so wrappers
// can parse it when using port 0. SIGINT/SIGTERM drains gracefully:
// running jobs stop at their next chunk boundary, checkpoints are
// flushed, the job table is persisted, and the process exits 0; a
// restart over the same -data directory resumes interrupted jobs and
// keeps serving completed results.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"bpred/internal/cluster"
	"bpred/internal/service"
)

func main() {
	var (
		listen   = flag.String("listen", ":8149", "listen address (host:port; port 0 picks a free port)")
		dataDir  = flag.String("data", "", "data directory for traces, checkpoints, results, and the job table (required unless -role worker)")
		workers  = flag.Int("workers", 0, "sweep worker pool size (0 = 2)")
		queue    = flag.Int("queue", 0, "job queue depth before submissions see 429 (0 = 64)")
		maxBr    = flag.Uint64("max-trace-branches", 0, "per-trace record cap (0 = 16M)")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "how long a shutdown waits for running jobs to reach a chunk boundary")
		role     = flag.String("role", "single", "process role: single, coordinator, or worker")
		node     = flag.String("node", "", "this node's fleet identity (default: derived from role and pid)")
		join     = flag.String("join", "", "coordinator base URL a worker dials, e.g. http://host:8149 (required for -role worker)")
		lease    = flag.Duration("cluster-lease", 2*time.Minute, "coordinator: re-queue a dispatched chunk if not completed within this lease (0 disables)")
		authFile = flag.String("auth-file", "", "tenants JSON file ([{name, key, max_traces, max_queued_jobs}]); enables multi-tenant auth")
		cToken   = flag.String("cluster-token", "", "shared bearer token protecting the /cluster/v1 transport (coordinator and workers)")
		cacheCap = flag.Int("trace-cache", 0, "decoded-trace LRU capacity in traces (0 = 8); running jobs pin their traces")
		streamBr = flag.Uint64("stream-branches", 0, "traces beyond this record count stream from disk instead of decoding (0 = 4M)")
	)
	flag.Parse()

	switch *role {
	case "worker":
		os.Exit(runWorker(*node, *join, *cToken))
	case "single", "coordinator":
	default:
		fmt.Fprintf(os.Stderr, "bpserved: unknown -role %q (want single, coordinator, or worker)\n", *role)
		os.Exit(2)
	}

	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "bpserved: -data required")
		os.Exit(2)
	}

	cfg := service.Config{
		DataDir:          *dataDir,
		Workers:          *workers,
		QueueDepth:       *queue,
		MaxTraceBranches: *maxBr,
		TraceCacheCap:    *cacheCap,
		StreamBranches:   *streamBr,
	}
	if *authFile != "" {
		tenants, err := service.LoadTenants(*authFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpserved: %v\n", err)
			os.Exit(1)
		}
		cfg.Tenants = tenants
		fmt.Fprintf(os.Stderr, "bpserved: multi-tenant mode, %d tenants\n", len(tenants))
	}

	// Coordinator role: jobs schedule onto the cluster instead of the
	// in-process engine. The coordinator's ledger lives under its own
	// subdirectory — the manager's per-job stores already own
	// checkpoints/, and checkpoint forbids two live Stores per path.
	var coord *cluster.Coordinator
	if *role == "coordinator" {
		if err := os.MkdirAll(filepath.Join(*dataDir, "cluster"), 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "bpserved: %v\n", err)
			os.Exit(1)
		}
		coord = cluster.NewCoordinator(cluster.Config{
			Dir:          filepath.Join(*dataDir, "cluster"),
			LeaseTimeout: *lease,
			PublishName:  "bpcluster",
		})
		cfg.Scheduler = service.ClusterScheduler{Coord: coord}
	}

	m, err := service.NewManager(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bpserved: %v\n", err)
		os.Exit(1)
	}

	handler := http.Handler(service.NewServer(m))
	var localWorkerDone chan error
	var stopLocalWorker context.CancelFunc
	if coord != nil {
		mux := http.NewServeMux()
		mux.Handle("/cluster/v1/", http.StripPrefix("/cluster/v1", cluster.AuthHandler(coord, m.Traces(), *cToken)))
		mux.Handle("/", handler)
		handler = mux
		// Embedded local worker: a lone coordinator still completes
		// jobs, and a fleet gets this node's cores too.
		id := *node
		if id == "" {
			id = fmt.Sprintf("coord-%d", os.Getpid())
		}
		w := cluster.NewWorker(id+"-local", coord, m.Traces())
		wctx, cancel := context.WithCancel(context.Background())
		stopLocalWorker = cancel
		localWorkerDone = make(chan error, 1)
		go func() { localWorkerDone <- w.Run(wctx) }()
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bpserved: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bpserved: listening on %s\n", ln.Addr())

	srv := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "bpserved: %v: draining\n", s)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "bpserved: %v\n", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	// Drain first (stop accepting work, interrupt jobs at the next
	// chunk boundary, flush checkpoints, persist the job table), then
	// close the HTTP side.
	if err := m.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "bpserved: drain: %v\n", err)
		srv.Close()
		os.Exit(1)
	}
	if stopLocalWorker != nil {
		stopLocalWorker()
		<-localWorkerDone
	}
	if coord != nil {
		if err := coord.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "bpserved: cluster stop: %v\n", err)
		}
	}
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "bpserved: shutdown: %v\n", err)
	}
	<-errCh // Serve has returned http.ErrServerClosed
	fmt.Fprintln(os.Stderr, "bpserved: drained, exiting")
}

// runWorker runs the stateless worker role: dial the coordinator,
// pull chunks, push results, until SIGINT/SIGTERM.
func runWorker(node, join, token string) int {
	if join == "" {
		fmt.Fprintln(os.Stderr, "bpserved: -role worker requires -join <coordinator URL>")
		return 2
	}
	if node == "" {
		node = fmt.Sprintf("worker-%d", os.Getpid())
	}
	base := strings.TrimRight(join, "/") + "/cluster/v1"
	w := cluster.NewWorker(node,
		&cluster.HTTPClient{Base: base, Token: token},
		&cluster.RemoteTraces{Base: base, Token: token})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "bpserved: worker %s joining %s\n", node, base)
	err := w.Run(ctx)
	if err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "bpserved: worker: %v\n", err)
		return 1
	}
	st := w.Stats()
	fmt.Fprintf(os.Stderr, "bpserved: worker %s exiting (chunks %d, computed %d, local %d, replicas %d)\n",
		node, st.ChunksRun, st.CellsComputed, st.CellsLocal, st.ReplicasInstalled)
	return 0
}
