package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"bpred/internal/trace"
	"bpred/internal/workload"
)

// buildBinary compiles bpserved once per test run.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "bpserved")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// server is one running bpserved process.
type server struct {
	cmd *exec.Cmd
	url string
}

// startServer launches the binary on an ephemeral port and parses the
// bound address from its stderr banner. extra flags are appended, so
// callers can select e.g. -role coordinator.
func startServer(t *testing.T, bin, dataDir string, extra ...string) *server {
	t.Helper()
	args := []string{
		"-listen", "127.0.0.1:0",
		"-data", dataDir,
		"-workers", "1",
		"-drain-timeout", "60s",
	}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatalf("StderrPipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", bin, err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "bpserved: listening on "); ok {
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &server{cmd: cmd, url: "http://" + addr}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("server never announced its listen address")
		return nil
	}
}

// sigterm sends SIGTERM and asserts a clean (exit 0) shutdown.
func (s *server) sigterm(t *testing.T) {
	t.Helper()
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(90 * time.Second):
		s.cmd.Process.Kill()
		t.Fatal("server did not exit after SIGTERM")
	}
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s (%q): %v", url, raw, err)
		}
	}
	return resp.StatusCode
}

// TestSIGTERMDrainRestartServe is the binary-level graceful-shutdown
// contract: SIGTERM during a running job drains it at a chunk
// boundary, flushes the checkpoint cache, persists the job table, and
// exits 0; a restarted server over the same data directory resumes
// the interrupted job from cache and serves its completed result.
func TestSIGTERMDrainRestartServe(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the server binary")
	}
	bin := buildBinary(t)
	dataDir := t.TempDir()
	srv := startServer(t, bin, dataDir)

	// A workload big enough that the sweep takes a while: 95 configs
	// over 1M branches.
	prof, ok := workload.ProfileByName("espresso")
	if !ok {
		prof = workload.Profiles()[0]
	}
	tr := workload.Generate(prof, 77, 1_000_000)
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, tr.Name, tr.Instructions, uint64(tr.Len()))
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, b := range tr.Branches {
		if err := w.WriteBranch(b); err != nil {
			t.Fatalf("WriteBranch: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	resp, err := http.Post(srv.url+"/v1/traces", "application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	var info struct {
		Digest string `json:"digest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decoding upload response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status = %d", resp.StatusCode)
	}

	spec := fmt.Sprintf(`{"trace":%q,"scheme":"gshare","min_bits":4,"max_bits":13}`, info.Digest)
	resp, err = http.Post(srv.url+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var ack struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatalf("decoding submit ack: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}

	// Catch the job running, then pull the plug.
	var st struct {
		State string `json:"state"`
	}
	deadline := time.Now().Add(30 * time.Second)
	for st.State != "running" && st.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.State)
		}
		getJSON(t, srv.url+"/v1/jobs/"+ack.ID, &st)
	}
	if st.State == "done" {
		t.Log("job finished before SIGTERM; still exercising restart-serves-result")
	}
	srv.sigterm(t)

	// The job table must have survived.
	if _, err := os.Stat(filepath.Join(dataDir, "jobs.json")); err != nil {
		t.Fatalf("job table not persisted: %v", err)
	}

	// Restart over the same data directory: the job resumes (or, if it
	// finished, its result is simply served).
	srv2 := startServer(t, bin, dataDir)
	defer srv2.sigterm(t)

	deadline = time.Now().Add(120 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("resumed job stuck in %q", st.State)
		}
		getJSON(t, srv2.url+"/v1/jobs/"+ack.ID, &st)
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "canceled" {
			t.Fatalf("resumed job ended %q", st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	var res struct {
		Partial    bool `json:"partial"`
		CellsTotal int  `json:"cells_total"`
		Cells      []struct {
			MispredictRate float64 `json:"mispredict_rate"`
		} `json:"cells"`
	}
	if code := getJSON(t, srv2.url+"/v1/jobs/"+ack.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result status = %d", code)
	}
	if res.Partial || len(res.Cells) != res.CellsTotal || res.CellsTotal == 0 {
		t.Fatalf("restarted result = partial=%v cells=%d/%d", res.Partial, len(res.Cells), res.CellsTotal)
	}
}
