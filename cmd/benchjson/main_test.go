package main

import (
	"bufio"
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: bpred
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkKernels/gshare/batched-4         	     446	   2738084 ns/op	 182.61 MB/s
BenchmarkKernels/gshare/packed-4          	     900	   1350000 ns/op	 370.00 MB/s
BenchmarkSweepChunked-4                   	      20	  58269360 ns/op	 189.24 MB/s
ok  	bpred	12.3s
`

func parseText(t *testing.T, text string) Doc {
	t.Helper()
	doc, err := parse(bufio.NewScanner(strings.NewReader(text)))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return doc
}

func TestParse(t *testing.T) {
	doc := parseText(t, benchText)
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "bpred" {
		t.Errorf("header fields wrong: %+v", doc)
	}
	if len(doc.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(doc.Results))
	}
	r := doc.Results[0]
	if r.Name != "BenchmarkKernels/gshare/batched" || r.Procs != 4 || r.Iterations != 446 {
		t.Errorf("result[0] = %+v", r)
	}
	if r.Metrics["MB/s"] != 182.61 || r.Metrics["ns/op"] != 2738084 {
		t.Errorf("result[0] metrics = %v", r.Metrics)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("ok bpred 1s\n"))); err == nil {
		t.Error("parse of bench-free input succeeded; want error")
	}
}

// result builds a Doc entry with one MB/s metric.
func result(name string, mbs float64) Result {
	m := map[string]float64{}
	if mbs > 0 {
		m["MB/s"] = mbs
	}
	return Result{Name: name, Procs: 1, Iterations: 1, Metrics: m}
}

func TestCompare(t *testing.T) {
	base := Doc{Results: []Result{
		result("a", 100),
		result("b", 100),
		result("gone", 50),
		result("nombs", 0),
	}}
	cur := Doc{Results: []Result{
		result("a", 90),  // -10%: within 15% tolerance
		result("b", 80),  // -20%: regression
		result("new", 5), // not in baseline: noted only
		result("nombs", 0),
	}}
	rep := compare(cur, base, 15)
	if rep.compared != 2 {
		t.Errorf("compared = %d, want 2", rep.compared)
	}
	if len(rep.failures) != 1 || !strings.Contains(rep.failures[0], "b:") {
		t.Errorf("failures = %v, want exactly one for b", rep.failures)
	}
	joined := strings.Join(rep.notes, "\n")
	for _, want := range []string{"new: not in baseline", "nombs: no MB/s", "gone: in baseline but not in this run"} {
		if !strings.Contains(joined, want) {
			t.Errorf("notes missing %q:\n%s", want, joined)
		}
	}
}

func TestCompareTolerance(t *testing.T) {
	base := Doc{Results: []Result{result("a", 100)}}
	for _, tc := range []struct {
		cur, tol float64
		fail     bool
	}{
		{86, 15, false}, // -14%
		{84, 15, true},  // -16%
		{84, 20, false},
		{120, 15, false}, // improvement never fails
	} {
		rep := compare(Doc{Results: []Result{result("a", tc.cur)}}, base, tc.tol)
		if got := len(rep.failures) > 0; got != tc.fail {
			t.Errorf("cur=%v tol=%v: fail=%v, want %v (%v)", tc.cur, tc.tol, got, tc.fail, rep.failures)
		}
	}
}
