// Command benchjson converts `go test -bench` text output into a
// stable JSON document so benchmark results can be tracked across
// PRs (see the bench-sim Makefile target, which emits
// BENCH_sim.json).
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkKernels . | go run ./cmd/benchjson > BENCH_sim.json
//
// Non-benchmark lines are ignored, so the full `go test` output can
// be piped in unfiltered.
//
// With -check, benchjson instead compares the run on stdin against a
// checked-in baseline and exits non-zero if any benchmark's MB/s
// regressed by more than -tolerance percent:
//
//	go test -run '^$' -bench . . | go run ./cmd/benchjson -check -baseline BENCH_sim.json -tolerance 15
//
// Benchmarks present in the run but absent from the baseline are
// reported as new and never fail the gate; baseline entries missing
// from the run are warned about but tolerated, so a scoped -bench
// filter can gate a subset.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line. Metrics holds every reported
// value keyed by its unit (ns/op, MB/s, misp%, B/op, allocs/op, ...).
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the emitted document.
type Doc struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the whole program behind an exit code: 0 success, 1 parse or
// gate failure, 2 usage error. Factored off main so tests can drive
// the exact CLI surface (flags, streams, exit codes) in-process.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	check := fs.Bool("check", false, "compare stdin against -baseline instead of emitting JSON")
	baseline := fs.String("baseline", "BENCH_sim.json", "baseline JSON document for -check")
	tolerance := fs.Float64("tolerance", 15, "max tolerated MB/s regression for -check, in percent")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	doc, err := parse(bufio.NewScanner(stdin))
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	if *check {
		base, err := readDoc(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		rep := compare(doc, base, *tolerance)
		for _, line := range rep.notes {
			fmt.Fprintln(stderr, "benchjson:", line)
		}
		for _, line := range rep.failures {
			fmt.Fprintln(stderr, "benchjson: FAIL:", line)
		}
		if len(rep.failures) > 0 {
			return 1
		}
		fmt.Fprintf(stderr, "benchjson: %d benchmarks within %.0f%% of %s\n",
			rep.compared, *tolerance, *baseline)
		return 0
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	return 0
}

// throughputUnit is the metric the regression gate compares. MB/s is
// what every simulation benchmark reports (1 branch record = 1 byte
// of SetBytes, so MB/s reads as Mbranches/s).
const throughputUnit = "MB/s"

// report is the outcome of one baseline comparison.
type report struct {
	compared int      // benchmarks present in both documents with MB/s
	notes    []string // informational: new benchmarks, missing metrics
	failures []string // regressions beyond tolerance
}

// compare checks every current result against the baseline document.
// Only MB/s regressions fail: a benchmark missing from the baseline is
// new (noted, not failed), and baseline entries absent from the
// current run are noted so a narrowed -bench filter is visible.
func compare(cur, base Doc, tolerance float64) report {
	var rep report
	baseBy := map[string]Result{}
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	seen := map[string]bool{}
	for _, r := range cur.Results {
		seen[r.Name] = true
		b, ok := baseBy[r.Name]
		if !ok {
			rep.notes = append(rep.notes, fmt.Sprintf("%s: not in baseline (new benchmark)", r.Name))
			continue
		}
		cv, cok := r.Metrics[throughputUnit]
		bv, bok := b.Metrics[throughputUnit]
		if !cok || !bok || bv <= 0 {
			rep.notes = append(rep.notes, fmt.Sprintf("%s: no %s to compare", r.Name, throughputUnit))
			continue
		}
		rep.compared++
		drop := (bv - cv) / bv * 100
		if drop > tolerance {
			rep.failures = append(rep.failures, fmt.Sprintf(
				"%s: %.2f %s vs baseline %.2f %s (-%.1f%%, tolerance %.0f%%)",
				r.Name, cv, throughputUnit, bv, throughputUnit, drop, tolerance))
		}
	}
	for _, r := range base.Results {
		if !seen[r.Name] {
			rep.notes = append(rep.notes, fmt.Sprintf("%s: in baseline but not in this run", r.Name))
		}
	}
	return rep
}

// readDoc loads a JSON document previously emitted by benchjson.
func readDoc(path string) (Doc, error) {
	f, err := os.Open(path)
	if err != nil {
		return Doc{}, err
	}
	defer f.Close()
	var doc Doc
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return Doc{}, fmt.Errorf("%s: %v", path, err)
	}
	return doc, nil
}

func parse(sc *bufio.Scanner) (Doc, error) {
	var doc Doc
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		r, ok := parseLine(line)
		if ok {
			doc.Results = append(doc.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return doc, err
	}
	if len(doc.Results) == 0 {
		return doc, fmt.Errorf("no benchmark lines found on stdin")
	}
	return doc, nil
}

// parseLine decodes one `BenchmarkX-P  N  v1 u1  v2 u2 ...` line.
func parseLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Result{}, false
	}
	name, procs := splitProcs(f[0])
	iter, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Procs: procs, Iterations: iter, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[f[i+1]] = v
	}
	return r, true
}

// splitProcs strips the trailing -P GOMAXPROCS suffix Go appends to
// benchmark names.
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 1
	}
	p, err := strconv.Atoi(name[i+1:])
	if err != nil || p <= 0 {
		return name, 1
	}
	return name[:i], p
}
