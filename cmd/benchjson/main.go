// Command benchjson converts `go test -bench` text output into a
// stable JSON document so benchmark results can be tracked across
// PRs (see the bench-sim Makefile target, which emits
// BENCH_sim.json).
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkKernels . | go run ./cmd/benchjson > BENCH_sim.json
//
// Non-benchmark lines are ignored, so the full `go test` output can
// be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line. Metrics holds every reported
// value keyed by its unit (ns/op, MB/s, misp%, B/op, allocs/op, ...).
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the emitted document.
type Doc struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (Doc, error) {
	var doc Doc
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		r, ok := parseLine(line)
		if ok {
			doc.Results = append(doc.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return doc, err
	}
	if len(doc.Results) == 0 {
		return doc, fmt.Errorf("no benchmark lines found on stdin")
	}
	return doc, nil
}

// parseLine decodes one `BenchmarkX-P  N  v1 u1  v2 u2 ...` line.
func parseLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Result{}, false
	}
	name, procs := splitProcs(f[0])
	iter, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Procs: procs, Iterations: iter, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[f[i+1]] = v
	}
	return r, true
}

// splitProcs strips the trailing -P GOMAXPROCS suffix Go appends to
// benchmark names.
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 1
	}
	p, err := strconv.Atoi(name[i+1:])
	if err != nil || p <= 0 {
		return name, 1
	}
	return name[:i], p
}
