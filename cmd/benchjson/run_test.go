package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI drives run() with benchText (or custom stdin) and returns
// the exit code plus captured streams.
func runCLI(t *testing.T, args []string, stdin string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

// writeBaseline marshals a Doc into a temp file and returns its path.
func writeBaseline(t *testing.T, doc Doc) string {
	t.Helper()
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatalf("marshal baseline: %v", err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("writing baseline: %v", err)
	}
	return path
}

func TestRunEmitsJSON(t *testing.T) {
	code, stdout, stderr := runCLI(t, nil, benchText)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	var doc Doc
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("stdout is not a Doc: %v\n%s", err, stdout)
	}
	if len(doc.Results) != 3 || doc.Goos != "linux" {
		t.Fatalf("round-tripped doc wrong: %+v", doc)
	}
}

func TestRunNoBenchmarksExits1(t *testing.T) {
	code, _, stderr := runCLI(t, nil, "ok bpred 1.2s\n")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "no benchmark lines") {
		t.Fatalf("stderr = %q, want a no-benchmark-lines diagnostic", stderr)
	}
}

func TestRunBadFlagExits2(t *testing.T) {
	code, _, stderr := runCLI(t, []string{"-no-such-flag"}, benchText)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (usage error)", code)
	}
	if !strings.Contains(stderr, "no-such-flag") {
		t.Fatalf("stderr = %q, want the offending flag named", stderr)
	}
}

// TestCheckEmptyBaseline gates against a baseline with no results:
// every current benchmark is new, nothing can regress, exit 0.
func TestCheckEmptyBaseline(t *testing.T) {
	path := writeBaseline(t, Doc{})
	code, _, stderr := runCLI(t, []string{"-check", "-baseline", path}, benchText)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "not in baseline (new benchmark)") {
		t.Fatalf("stderr = %q, want new-benchmark notes", stderr)
	}
	if !strings.Contains(stderr, "0 benchmarks within") {
		t.Fatalf("stderr = %q, want a zero-compared summary", stderr)
	}
}

// TestCheckBaselineOnlyBenchmark tolerates baseline entries missing
// from a (narrowed) run: noted on stderr, exit 0.
func TestCheckBaselineOnlyBenchmark(t *testing.T) {
	path := writeBaseline(t, Doc{Results: []Result{
		result("BenchmarkKernels/gshare/batched", 180),
		result("BenchmarkRetired", 500),
	}})
	code, _, stderr := runCLI(t, []string{"-check", "-baseline", path}, benchText)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "BenchmarkRetired: in baseline but not in this run") {
		t.Fatalf("stderr = %q, want the baseline-only benchmark noted", stderr)
	}
	if strings.Contains(stderr, "FAIL") {
		t.Fatalf("stderr = %q, a missing benchmark must never fail the gate", stderr)
	}
}

func TestCheckRegressionExits1(t *testing.T) {
	path := writeBaseline(t, Doc{Results: []Result{
		// benchText reports 182.61 MB/s for this one: a >15% drop.
		result("BenchmarkKernels/gshare/batched", 400),
	}})
	code, _, stderr := runCLI(t, []string{"-check", "-baseline", path}, benchText)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "FAIL: BenchmarkKernels/gshare/batched") {
		t.Fatalf("stderr = %q, want the regressed benchmark named in a FAIL line", stderr)
	}
}

func TestCheckMalformedBaselineExits1(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatalf("writing baseline: %v", err)
	}
	code, _, stderr := runCLI(t, []string{"-check", "-baseline", path}, benchText)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, path) {
		t.Fatalf("stderr = %q, want the baseline path in the diagnostic", stderr)
	}
}

// TestCheckZeroByteBaselineExits1: a truncated (empty) baseline file
// is malformed, not an empty document.
func TestCheckZeroByteBaselineExits1(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatalf("writing baseline: %v", err)
	}
	code, _, stderr := runCLI(t, []string{"-check", "-baseline", path}, benchText)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "benchjson:") {
		t.Fatalf("stderr = %q, want a diagnostic", stderr)
	}
}

func TestCheckMissingBaselineExits1(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.json")
	code, _, stderr := runCLI(t, []string{"-check", "-baseline", path}, benchText)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "nope.json") {
		t.Fatalf("stderr = %q, want the missing path named", stderr)
	}
}
