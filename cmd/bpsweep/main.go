// bpsweep regenerates the paper's tables and figures.
//
// Usage:
//
//	bpsweep -exp all                 # every table and figure
//	bpsweep -exp table3,fig4         # specific experiments
//	bpsweep -list                    # list experiment ids
//	bpsweep -exp fig4 -focus-len 4000000 -seed 42
//
// Output is the text rendering of each experiment (tier grids for the
// surface figures, rows for the tables), printed to stdout or -o.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"bpred/internal/experiments"
	"bpred/internal/obs"
)

func main() {
	var (
		exp      = flag.String("exp", "", "comma-separated experiment ids, or 'all'")
		list     = flag.Bool("list", false, "list available experiments and exit")
		seed     = flag.Uint64("seed", 0, "workload seed (0 = default)")
		focusLen = flag.Int("focus-len", 0, "branches per focus-benchmark trace (0 = 2000000)")
		suiteLen = flag.Int("suite-len", 0, "branches per suite-benchmark trace (0 = 800000)")
		minBits  = flag.Int("min-bits", 0, "smallest counter budget, log2 (0 = 4)")
		maxBits  = flag.Int("max-bits", 0, "largest counter budget, log2 (0 = 15)")
		out      = flag.String("o", "", "output file (default stdout)")
		csvDir   = flag.String("csv", "", "also write raw surface data as CSV files into this directory")
		svgDir   = flag.String("svg", "", "also render surface/difference figures as SVG files into this directory")
		htmlOut  = flag.String("html", "", "write a single self-contained HTML report (text + inline figures) to this file")
		allBench = flag.Bool("all-benchmarks", false, "run surface experiments and table3 over all 14 benchmarks (the companion technical report's scope) instead of the paper's 3 focus benchmarks")
		timeout  = flag.Duration("timeout", 0, "abort after this long (0 = no limit); partial sweep results are checkpointed when -resume is set")
		resume   = flag.String("resume", "", "checkpoint directory: sweep cells are cached here and interrupted runs resume from it")
		progress = flag.Bool("progress", false, "report run progress to stderr every 2s")
	)
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			desc, _ := experiments.Describe(name)
			fmt.Printf("%-8s %s\n", name, desc)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "bpsweep: -exp required (use -list to see experiments, or -exp all)")
		os.Exit(2)
	}

	var names []string
	if *exp == "all" {
		names = experiments.Names()
	} else {
		for _, n := range strings.Split(*exp, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if _, ok := experiments.Describe(n); !ok {
				fmt.Fprintf(os.Stderr, "bpsweep: unknown experiment %q; known: %v\n", n, experiments.Names())
				os.Exit(2)
			}
			names = append(names, n)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpsweep: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	if *htmlOut != "" && *out != "" {
		fmt.Fprintln(os.Stderr, "bpsweep: use -o or -html, not both")
		os.Exit(2)
	}

	runCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, *timeout)
		defer cancel()
	}

	counters := &obs.Counters{}
	counters.Start()
	if *progress {
		go func() {
			tick := time.NewTicker(2 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-runCtx.Done():
					return
				case <-tick.C:
					fmt.Fprintf(os.Stderr, "bpsweep: %s\n", counters.Snapshot())
				}
			}
		}()
	}

	ctx := experiments.NewContext(experiments.Params{
		Seed:          *seed,
		FocusLength:   *focusLen,
		SuiteLength:   *suiteLen,
		MinBits:       *minBits,
		MaxBits:       *maxBits,
		AllBenchmarks: *allBench,
		Ctx:           runCtx,
		CheckpointDir: *resume,
		Obs:           counters,
	})
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpsweep: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := experiments.WriteHTMLReport(f, ctx, names); err != nil {
			fmt.Fprintf(os.Stderr, "bpsweep: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bpsweep: wrote %s\n", *htmlOut)
		return
	}

	for _, name := range names {
		desc, _ := experiments.Describe(name)
		start := time.Now()
		res, err := experiments.Run(name, ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpsweep: %v\n", err)
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				if *progress {
					fmt.Fprintf(os.Stderr, "bpsweep: %s\n", counters.Snapshot())
				}
				if *resume != "" {
					fmt.Fprintf(os.Stderr, "bpsweep: completed sweep cells are checkpointed in %s; rerun with the same flags to resume\n", *resume)
				}
				os.Exit(130)
			}
			os.Exit(1)
		}
		fmt.Fprintf(w, "==== %s: %s [%s]\n\n", name, desc, time.Since(start).Round(time.Millisecond))
		fmt.Fprintln(w, res.Render())

		if *csvDir != "" {
			if cw, ok := res.(experiments.CSVWriter); ok {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					fmt.Fprintf(os.Stderr, "bpsweep: %v\n", err)
					os.Exit(1)
				}
				if err := cw.WriteCSVs(*csvDir, name); err != nil {
					fmt.Fprintf(os.Stderr, "bpsweep: %v\n", err)
					os.Exit(1)
				}
			}
		}
		if *svgDir != "" {
			if sw, ok := res.(experiments.SVGWriter); ok {
				if err := os.MkdirAll(*svgDir, 0o755); err != nil {
					fmt.Fprintf(os.Stderr, "bpsweep: %v\n", err)
					os.Exit(1)
				}
				if err := sw.WriteSVGs(*svgDir, name); err != nil {
					fmt.Fprintf(os.Stderr, "bpsweep: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
	if *progress {
		fmt.Fprintf(os.Stderr, "bpsweep: done: %s\n", counters.Snapshot())
	}
}
