// Command bplint runs the project's static-analysis suite — the
// kernel-purity, cancellation-contract, index-geometry, determinism,
// codec-error, lock-discipline, goroutine-lifecycle, atomic-mixing,
// HTTP-response, and resource-pairing analyzers — over the module in
// the current directory.
//
// Usage:
//
//	bplint [flags] [packages]
//
//	-json          emit one JSON object per finding per line
//	               (file, line, col, analyzer, message)
//	-staleignores  also report //bplint:ignore directives that no
//	               longer suppress anything
//
// With no arguments it checks ./... . Exit status is 0 when clean, 1
// when findings were reported, 2 when the module failed to load or
// the flags were invalid. See the "Static analysis" section of
// README.md for the invariant catalogue and the //bplint:ignore
// suppression syntax, and DESIGN.md §14 for the concurrency and
// protocol analyzers.
package main

import (
	"os"

	"bpred/internal/analysis/bplint"
)

func main() {
	os.Exit(bplint.Run(".", os.Args[1:], os.Stdout, os.Stderr))
}
