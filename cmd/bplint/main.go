// Command bplint runs the project's static-analysis suite — the
// kernel-purity, cancellation-contract, index-geometry, determinism,
// and codec-error analyzers — over the module in the current
// directory.
//
// Usage:
//
//	bplint [packages]
//
// With no arguments it checks ./... . Exit status is 0 when clean, 1
// when findings were reported, 2 when the module failed to load. See
// the "Static analysis" section of README.md for the invariant
// catalogue and the //bplint:ignore suppression syntax.
package main

import (
	"os"

	"bpred/internal/analysis/bplint"
)

func main() {
	os.Exit(bplint.Run(".", os.Args[1:], os.Stdout, os.Stderr))
}
