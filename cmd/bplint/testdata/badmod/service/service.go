// Package service seeds one violation each for the lockguard,
// goloop, atomicmix, and closecheck analyzers, plus one stale ignore
// directive for the -staleignores flag.
package service

import (
	"sync"
	"sync/atomic"
)

// Pool mixes every concurrency sin the suite knows about.
type Pool struct {
	mu sync.Mutex
	n  int //bplint:guardedby mu

	hits uint64
}

// lockguard: n is read without holding mu.
func (p *Pool) Peek() int { return p.n }

// goloop: fire-and-forget goroutine with no join or cancellation.
func (p *Pool) Kick() {
	go func() {
		p.mu.Lock()
		p.n++
		p.mu.Unlock()
	}()
}

// atomicmix: hits is updated atomically here...
func (p *Pool) Hit() { atomic.AddUint64(&p.hits, 1) }

// ...and read plainly here.
func (p *Pool) Hits() uint64 { return p.hits }

// Handle and Store give closecheck an Acquire/Release pair to track.
type Handle struct{}

// Release returns the handle.
func (h *Handle) Release() {}

// Store hands out handles.
type Store struct{}

// Acquire leases a handle.
func (s *Store) Acquire() (*Handle, error) { return &Handle{}, nil }

// Leak discards the acquired handle outright (closecheck).
func Leak(s *Store) {
	_, _ = s.Acquire()
}

// Quiet does nothing wrong; its directive suppresses nothing and is
// only reported under -staleignores.
func Quiet() int {
	return 1 //bplint:ignore detrand seeded stale directive for the staleignores fixture
}
