// Package run seeds one violation each for the ctxchunk and codecerr
// analyzers.
package run

import "badfixture/trace"

// ctxchunk: exported BatchSource consumer without a context.
func RunAll(bs trace.BatchSource, w *trace.Writer) error {
	buf := make([]trace.Branch, 16)
	for {
		chunk, err := bs.NextBatch(buf)
		for _, b := range chunk {
			if err := w.WriteBranch(b); err != nil {
				return err
			}
		}
		if err != nil || len(chunk) == 0 {
			// codecerr: the close error is thrown away.
			_ = w.Close()
			return err
		}
	}
}
