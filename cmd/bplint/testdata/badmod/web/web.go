// Package web seeds one violation for the httpdiscipline analyzer.
package web

import "net/http"

// Handle double-commits the response status (httpdiscipline).
func Handle(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.WriteHeader(http.StatusInternalServerError)
}
