// Package trace is the seeded fixture's codec stand-in.
package trace

type Branch struct {
	PC     uint64
	Target uint64
	Taken  bool
}

type BatchSource interface {
	NextBatch(buf []Branch) ([]Branch, error)
}

type Writer struct{}

func (w *Writer) WriteBranch(b Branch) error { return nil }
func (w *Writer) Close() error               { return nil }
