// Package sim seeds one violation for each of the kernelpure,
// geometry, and detrand analyzers; cmd/bplint's smoke test asserts
// that all of them are reported.
package sim

import "time"

// kernelpure: allocation inside an annotated kernel loop.
//
//bpred:kernel
func Kernel(xs []int) int {
	total := 0
	for _, x := range xs {
		s := make([]int, 1)
		total += x + s[0]
	}
	return total
}

// geometry: raw address bits index a table.
func Lookup(t []uint8, pc uint64) uint8 {
	return t[pc]
}

// detrand: wall-clock read in a simulation package.
func Stamp() int64 {
	return time.Now().UnixNano()
}
