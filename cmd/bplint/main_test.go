package main

import (
	"encoding/json"
	"strings"
	"testing"

	"bpred/internal/analysis/bplint"
)

// TestCleanOnRealTree is the self-hosting check: the module's own
// sources must pass the full suite. main() is os.Exit(bplint.Run(...)),
// so exercising Run exercises the command.
func TestCleanOnRealTree(t *testing.T) {
	var out, errb strings.Builder
	code := bplint.Run("../..", nil, &out, &errb)
	if code != bplint.ExitClean {
		t.Fatalf("bplint on the real tree exited %d, want %d\nfindings:\n%s%s",
			code, bplint.ExitClean, out.String(), errb.String())
	}
}

// TestNonzeroOnSeededViolations checks that the seeded fixture module
// trips every analyzer in the suite and yields the findings exit code.
func TestNonzeroOnSeededViolations(t *testing.T) {
	var out, errb strings.Builder
	code := bplint.Run("testdata/badmod", nil, &out, &errb)
	if code != bplint.ExitFindings {
		t.Fatalf("bplint on badmod exited %d, want %d\nstdout:\n%s\nstderr:\n%s",
			code, bplint.ExitFindings, out.String(), errb.String())
	}
	for _, name := range []string{
		"atomicmix", "closecheck", "codecerr", "ctxchunk", "detrand",
		"geometry", "goloop", "httpdiscipline", "kernelpure", "lockguard",
	} {
		if !strings.Contains(out.String(), "["+name+"]") {
			t.Errorf("badmod findings missing analyzer %s:\n%s", name, out.String())
		}
	}
	if strings.Contains(out.String(), "stale //bplint:ignore") {
		t.Errorf("stale directives reported without -staleignores:\n%s", out.String())
	}
}

// TestJSONOutput checks the -json mode: one parseable object per
// line, every field populated, and the findings exit code intact.
func TestJSONOutput(t *testing.T) {
	var out, errb strings.Builder
	code := bplint.Run("testdata/badmod", []string{"-json"}, &out, &errb)
	if code != bplint.ExitFindings {
		t.Fatalf("bplint -json on badmod exited %d, want %d\nstderr:\n%s",
			code, bplint.ExitFindings, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no JSON findings emitted")
	}
	for _, line := range lines {
		var f struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("unparseable -json line %q: %v", line, err)
		}
		if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("incomplete finding %q", line)
		}
	}
}

// TestStaleIgnoresFlag checks that -staleignores surfaces the seeded
// dead directive and that an unknown flag is a usage error, not a
// findings run.
func TestStaleIgnoresFlag(t *testing.T) {
	var out, errb strings.Builder
	code := bplint.Run("testdata/badmod", []string{"-staleignores"}, &out, &errb)
	if code != bplint.ExitFindings {
		t.Fatalf("bplint -staleignores on badmod exited %d, want %d", code, bplint.ExitFindings)
	}
	if !strings.Contains(out.String(), "stale //bplint:ignore: no detrand finding left to suppress here") {
		t.Errorf("seeded stale directive not reported:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := bplint.Run("testdata/badmod", []string{"-nosuchflag"}, &out, &errb); code != bplint.ExitError {
		t.Fatalf("unknown flag exited %d, want %d", code, bplint.ExitError)
	}
}

// TestLoadErrorExitCode distinguishes load failures from findings.
func TestLoadErrorExitCode(t *testing.T) {
	var out, errb strings.Builder
	code := bplint.Run("testdata/badmod", []string{"./nosuchpkg"}, &out, &errb)
	if code != bplint.ExitError {
		t.Fatalf("bplint on a bad pattern exited %d, want %d", code, bplint.ExitError)
	}
}
