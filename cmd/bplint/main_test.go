package main

import (
	"strings"
	"testing"

	"bpred/internal/analysis/bplint"
)

// TestCleanOnRealTree is the self-hosting check: the module's own
// sources must pass the full suite. main() is os.Exit(bplint.Run(...)),
// so exercising Run exercises the command.
func TestCleanOnRealTree(t *testing.T) {
	var out, errb strings.Builder
	code := bplint.Run("../..", nil, &out, &errb)
	if code != bplint.ExitClean {
		t.Fatalf("bplint on the real tree exited %d, want %d\nfindings:\n%s%s",
			code, bplint.ExitClean, out.String(), errb.String())
	}
}

// TestNonzeroOnSeededViolations checks that the seeded fixture module
// trips every analyzer in the suite and yields the findings exit code.
func TestNonzeroOnSeededViolations(t *testing.T) {
	var out, errb strings.Builder
	code := bplint.Run("testdata/badmod", nil, &out, &errb)
	if code != bplint.ExitFindings {
		t.Fatalf("bplint on badmod exited %d, want %d\nstdout:\n%s\nstderr:\n%s",
			code, bplint.ExitFindings, out.String(), errb.String())
	}
	for _, name := range []string{"kernelpure", "ctxchunk", "geometry", "detrand", "codecerr"} {
		if !strings.Contains(out.String(), "["+name+"]") {
			t.Errorf("badmod findings missing analyzer %s:\n%s", name, out.String())
		}
	}
}

// TestLoadErrorExitCode distinguishes load failures from findings.
func TestLoadErrorExitCode(t *testing.T) {
	var out, errb strings.Builder
	code := bplint.Run("testdata/badmod", []string{"./nosuchpkg"}, &out, &errb)
	if code != bplint.ExitError {
		t.Fatalf("bplint on a bad pattern exited %d, want %d", code, bplint.ExitError)
	}
}
