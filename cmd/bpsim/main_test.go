package main

import (
	"path/filepath"
	"testing"

	"bpred/internal/core"
	"bpred/internal/trace"
)

func TestBuildConfigSchemes(t *testing.T) {
	cases := []struct {
		scheme string
		want   core.Scheme
	}{
		{"address", core.SchemeAddress},
		{"gas", core.SchemeGAs},
		{"gshare", core.SchemeGShare},
		{"path", core.SchemePath},
		{"pas", core.SchemePAs},
	}
	for _, c := range cases {
		cfg, err := buildConfig(c.scheme, 6, 4, 0, 4, 2, false)
		if err != nil {
			t.Errorf("%s: %v", c.scheme, err)
			continue
		}
		if cfg.Scheme != c.want {
			t.Errorf("%s built scheme %v", c.scheme, cfg.Scheme)
		}
	}
}

func TestBuildConfigAddressDropsRows(t *testing.T) {
	cfg, err := buildConfig("address", 6, 4, 0, 4, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.RowBits != 0 {
		t.Errorf("address config kept RowBits=%d", cfg.RowBits)
	}
}

func TestBuildConfigPAsFirstLevel(t *testing.T) {
	cfg, err := buildConfig("pas", 10, 0, 1024, 4, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.FirstLevel.Kind != core.FirstLevelSetAssoc || cfg.FirstLevel.Entries != 1024 {
		t.Errorf("first level %+v", cfg.FirstLevel)
	}
	// l1-entries 0 = perfect.
	cfg, err = buildConfig("pas", 10, 0, 0, 4, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.FirstLevel.Kind != core.FirstLevelPerfect {
		t.Errorf("first level %+v, want perfect", cfg.FirstLevel)
	}
}

func TestBuildConfigRejects(t *testing.T) {
	if _, err := buildConfig("bogus", 4, 4, 0, 4, 2, false); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := buildConfig("pas", 10, 0, 100, 3, 2, false); err == nil {
		t.Error("invalid first level accepted")
	}
}

func TestLoadTraceSynthetic(t *testing.T) {
	tr, err := loadTrace("espresso", "", 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1000 || tr.Name != "espresso" {
		t.Errorf("trace %s/%d", tr.Name, tr.Len())
	}
}

func TestLoadTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.bpt")
	orig := &trace.Trace{Name: "file", Branches: []trace.Branch{{PC: 4, Target: 8, Taken: true}}}
	if err := trace.WriteFile(path, orig); err != nil {
		t.Fatal(err)
	}
	tr, err := loadTrace("", path, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "file" || tr.Len() != 1 {
		t.Errorf("trace %s/%d", tr.Name, tr.Len())
	}
}

func TestLoadTraceErrors(t *testing.T) {
	if _, err := loadTrace("", "", 1, 100); err == nil {
		t.Error("no source accepted")
	}
	if _, err := loadTrace("espresso", "x.bpt", 1, 100); err == nil {
		t.Error("both sources accepted")
	}
	if _, err := loadTrace("nonesuch", "", 1, 100); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := loadTrace("espresso", "", 1, 0); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := loadTrace("", "/does/not/exist.bpt", 1, 0); err == nil {
		t.Error("missing file accepted")
	}
}
