// bpsim runs a single branch predictor configuration over a workload
// and reports its misprediction rate and aliasing profile.
//
// Usage:
//
//	bpsim -workload espresso -scheme gshare -rows 11 -cols 4
//	bpsim -workload real_gcc -scheme pas -rows 12 -l1-entries 1024 -l1-ways 4
//	bpsim -trace foo.bpt -scheme address -cols 12 -meter
//
// Schemes: address, gas (GAg when -cols 0), gshare, path, pas
// (PAg/PAs; -l1-entries 0 means a perfect first level), tage,
// perceptron, tournament (the modern families — DESIGN.md §15).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"bpred/internal/btb"
	"bpred/internal/core"
	"bpred/internal/perf"
	"bpred/internal/sim"
	"bpred/internal/trace"
	"bpred/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "", "synthetic benchmark name (see bptrace -list)")
		traceFile    = flag.String("trace", "", "branch trace file (alternative to -workload)")
		n            = flag.Int("n", 2_000_000, "branches to simulate for synthetic workloads")
		seed         = flag.Uint64("seed", 1996, "workload seed")
		scheme       = flag.String("scheme", "gshare", "address | gas | gshare | path | pas | tage | perceptron | tournament")
		predictor    = flag.String("predictor", "", "canonical predictor name, e.g. 'PAs(1024/4w)-2^10x2^2' (overrides -scheme/-rows/-cols)")
		rows         = flag.Int("rows", 8, "history/row bits (log2 rows)")
		cols         = flag.Int("cols", 4, "address/column bits (log2 columns)")
		l1Entries    = flag.Int("l1-entries", 0, "PAs first-level entries (0 = perfect)")
		l1Ways       = flag.Int("l1-ways", 4, "PAs first-level associativity")
		pathBits     = flag.Int("path-bits", 2, "target-address bits per event for -scheme path")
		tageTables   = flag.Int("tage-tables", 0, "tagged table count for -scheme tage (0 = default)")
		tageMinHist  = flag.Int("tage-min-hist", 0, "shortest geometric history for -scheme tage (0 = default)")
		tageMaxHist  = flag.Int("tage-max-hist", 0, "longest geometric history for -scheme tage (0 = default)")
		tageTagBits  = flag.Int("tage-tag-bits", 0, "tag width for -scheme tage (0 = default)")
		tageUPeriod  = flag.Int("tage-u-period", 0, "useful-bit aging period for -scheme tage (0 = default, -1 = off)")
		weightBits   = flag.Int("weight-bits", 0, "weight width for -scheme perceptron (0 = default)")
		threshold    = flag.Int("threshold", 0, "training threshold for -scheme perceptron (0 = fitted default)")
		chooserBits  = flag.Int("chooser-bits", 0, "chooser table bits for -scheme tournament (0 = -rows)")
		warmupN      = flag.Int("warmup", -1, "unscored leading branches (-1 = 5% of trace)")
		meter        = flag.Bool("meter", false, "measure second-level aliasing")
		top          = flag.Int("top", 0, "also report the N worst-predicted branches (and, with -meter, the N most-conflicted table entries)")
		btbEntries   = flag.Int("btb", 0, "also model a BTB of this many entries: report fetch redirects and pipeline CPI estimates")
		btbWays      = flag.Int("btb-ways", 4, "BTB associativity")
		timeout      = flag.Duration("timeout", 0, "abort the simulation after this long (0 = no limit)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	tr, err := loadTrace(*workloadName, *traceFile, *seed, *n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bpsim: %v\n", err)
		os.Exit(2)
	}

	var cfg core.Config
	if *predictor != "" {
		cfg, err = core.ParseConfig(*predictor)
		cfg.Metered = *meter
	} else {
		cfg, err = buildConfig(*scheme, *rows, *cols, *l1Entries, *l1Ways, *pathBits, *meter)
		if err == nil {
			switch cfg.Scheme {
			case core.SchemeTAGE:
				cfg.TAGE = core.TAGEParams{Tables: *tageTables, MinHist: *tageMinHist,
					MaxHist: *tageMaxHist, TagBits: *tageTagBits, UPeriod: *tageUPeriod}
			case core.SchemePerceptron:
				cfg.Perceptron = core.PerceptronParams{WeightBits: *weightBits, Threshold: *threshold}
			case core.SchemeTournament:
				cfg.ChooserBits = *chooserBits
			}
			err = cfg.Validate()
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bpsim: %v\n", err)
		os.Exit(2)
	}
	pred, err := cfg.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bpsim: %v\n", err)
		os.Exit(2)
	}

	warm := *warmupN
	if warm < 0 {
		warm = tr.Len() / 20
	}
	var m sim.Metrics
	var bd *sim.Breakdown
	if *top > 0 {
		bd = sim.RunBreakdown(pred, tr.NewSource(), sim.Options{Warmup: warm})
		m = bd.Metrics
	} else {
		var runErr error
		m, runErr = sim.RunTraceCtx(ctx, pred, tr, sim.Options{Warmup: warm})
		if runErr != nil {
			reason := "interrupted"
			if errors.Is(runErr, context.DeadlineExceeded) {
				reason = fmt.Sprintf("timed out after %s", *timeout)
			}
			fmt.Fprintf(os.Stderr, "bpsim: %s; reporting partial results (%d of %d scored branches)\n",
				reason, m.Branches, tr.Len()-warm)
		}
	}

	fmt.Printf("workload:          %s (%d branches, %d scored)\n", tr.Name, tr.Len(), m.Branches)
	switch cfg.Scheme {
	case core.SchemeTAGE, core.SchemePerceptron, core.SchemeTournament:
		// Modern-family state is not a flat two-bit table; report the
		// storage accounting instead (tags, useful bits, weights).
		fmt.Printf("predictor:         %s (%d storage bits)\n", m.Name, cfg.Storage(true).Total())
	default:
		fmt.Printf("predictor:         %s (%d two-bit counters)\n", m.Name, cfg.Counters())
	}
	fmt.Printf("mispredictions:    %d (%.2f%%)\n", m.Mispredicts, 100*m.MispredictRate())
	if m.FirstLevelMissRate > 0 {
		fmt.Printf("first-level miss:  %.2f%%\n", 100*m.FirstLevelMissRate)
	}
	if *meter {
		a := m.Alias
		fmt.Printf("table accesses:    %d\n", a.Accesses)
		fmt.Printf("alias conflicts:   %d (%.2f%% of accesses)\n", a.Conflicts, 100*a.ConflictRate())
		fmt.Printf("  all-ones:        %.1f%% of conflicts\n", 100*a.AllOnesFraction())
		fmt.Printf("  destructive:     %.1f%% of conflicts\n", 100*a.DestructiveFraction())
		if a.TagAgree+a.TagDisagree > 0 {
			fmt.Printf("tag hits:          %d agreeing, %d disagreeing\n", a.TagAgree, a.TagDisagree)
		}
		if a.UsefulVictims > 0 {
			fmt.Printf("useful victims:    %d (allocations evicting live entries)\n", a.UsefulVictims)
		}
		if a.Overrides > 0 {
			fmt.Printf("provider override: %d (%d correct)\n", a.Overrides, a.OverrideCorrect)
		}
	}
	if *btbEntries > 0 {
		fe := sim.RunFrontend(cfg.MustBuild(), btb.New(*btbEntries, *btbWays), tr.NewSource(), sim.Options{Warmup: warm})
		branchFrac := 0.0
		if tr.Instructions > 0 {
			branchFrac = float64(tr.Len()) / float64(tr.Instructions)
		}
		fmt.Printf("btb:               %d entries, %d-way (hit rate %.2f%%)\n",
			*btbEntries, *btbWays, 100*fe.BTBHitRate)
		fmt.Printf("fetch redirects:   %d (%.2f%% of branches; %.2f%% direction, rest target)\n",
			fe.Redirects, 100*fe.RedirectRate(), 100*fe.DirectionRate())
		classic := perf.New(perf.Classic, branchFrac, fe.RedirectRate())
		deep := perf.New(perf.Deep, branchFrac, fe.RedirectRate())
		fmt.Printf("pipeline estimate: classic 5-stage %s\n", classic)
		fmt.Printf("                   deep speculative %s\n", deep)
	}
	if bd != nil {
		fmt.Printf("worst-predicted branches (top %d):\n", *top)
		branches := bd.Branches
		if len(branches) > *top {
			branches = branches[:*top]
		}
		for _, br := range branches {
			fmt.Printf("  %#010x %9d instances %8d misses (%.1f%%)\n",
				br.PC, br.Instances, br.Mispredicts, 100*br.Rate())
		}
		if *meter {
			if tl, ok := pred.(*core.TwoLevel); ok && tl.Meter() != nil {
				fmt.Printf("most-conflicted table entries (top %d):\n", *top)
				for _, e := range tl.Meter().TopEntries(*top) {
					fmt.Printf("  entry %6d: %7d conflicts (%d destructive), last pc %#x\n",
						e.Index, e.Conflicts, e.Destructive, e.LastPC)
				}
			}
		}
	}
}

func loadTrace(workloadName, traceFile string, seed uint64, n int) (*trace.Trace, error) {
	switch {
	case workloadName != "" && traceFile != "":
		return nil, fmt.Errorf("use -workload or -trace, not both")
	case traceFile != "":
		return trace.ReadFile(traceFile)
	case workloadName != "":
		p, ok := workload.ProfileByName(workloadName)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q; known: %v", workloadName, workload.ProfileNames())
		}
		if n <= 0 {
			return nil, fmt.Errorf("-n must be positive")
		}
		return workload.Generate(p, seed, n), nil
	default:
		return nil, fmt.Errorf("one of -workload or -trace is required")
	}
}

func buildConfig(scheme string, rows, cols, l1Entries, l1Ways, pathBits int, meter bool) (core.Config, error) {
	cfg := core.Config{RowBits: rows, ColBits: cols, Metered: meter}
	switch scheme {
	case "address":
		cfg.Scheme = core.SchemeAddress
		cfg.RowBits = 0
	case "gas":
		cfg.Scheme = core.SchemeGAs
	case "gshare":
		cfg.Scheme = core.SchemeGShare
	case "path":
		cfg.Scheme = core.SchemePath
		cfg.PathBits = pathBits
	case "pas":
		cfg.Scheme = core.SchemePAs
		if l1Entries > 0 {
			cfg.FirstLevel = core.FirstLevel{
				Kind:    core.FirstLevelSetAssoc,
				Entries: l1Entries,
				Ways:    l1Ways,
			}
		}
	case "tage":
		cfg.Scheme = core.SchemeTAGE
	case "perceptron":
		cfg.Scheme = core.SchemePerceptron
	case "tournament":
		cfg.Scheme = core.SchemeTournament
	default:
		return cfg, fmt.Errorf("unknown scheme %q", scheme)
	}
	return cfg, cfg.Validate()
}
